"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.experiments.runner import clear_sweep_cache


@pytest.fixture(autouse=True)
def clean_memo():
    # The planner's per-run memo is shared across specs, so without
    # isolation an earlier test's runs would satisfy a later test's
    # sweep and skew its telemetry expectations.
    clear_sweep_cache()
    yield
    clear_sweep_cache()


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_parses_multiple(self):
        args = build_parser().parse_args(["run", "table3", "figure5"])
        assert args.experiments == ["table3", "figure5"]

    def test_simulate_requires_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--scheme", "Ideal"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out and "figure9" in out
        assert "mcf" in out

    def test_run_table(self, capsys):
        assert main(["run", "table5"]) == 0
        out = capsys.readouterr().out
        assert "R(BCH=8,S=8,W=1)" in out

    def test_run_unknown_fails(self, capsys):
        assert main(["run", "table99"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_run_figure5(self, capsys):
        assert main(["run", "figure5"]) == 0
        assert "M-sensing" in capsys.readouterr().out

    def test_simulate(self, capsys):
        code = main(
            [
                "simulate",
                "--workload",
                "gcc",
                "--scheme",
                "LWT-4",
                "--requests",
                "500",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "scheme=LWT-4" in out
        assert "cell writes by cause" in out

    def test_simulate_with_instruction_override(self, capsys):
        code = main(
            [
                "simulate",
                "--workload",
                "lbm",
                "--scheme",
                "Ideal",
                "--instructions",
                "20000",
            ]
        )
        assert code == 0


class TestSchemeValidation:
    def test_simulate_unknown_scheme_fails_fast(self, capsys):
        code = main(["simulate", "--workload", "gcc", "--scheme", "BadName"])
        assert code == 2
        assert "unknown schemes: BadName" in capsys.readouterr().err

    def test_sweep_unknown_scheme_fails_fast(self, capsys):
        code = main(["sweep", "--schemes", "Ideal", "BadName", "--workloads", "gcc"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown schemes: BadName" in err
        assert "LWT-<k>" in err

    def test_parameterized_families_accepted(self, capsys):
        # LWT-8 / Select-2:1 are valid beyond the fixed SCHEME_NAMES list.
        code = main(
            ["simulate", "--workload", "gcc", "--scheme", "LWT-8",
             "--requests", "300"]
        )
        assert code == 0
        assert "scheme=LWT-8" in capsys.readouterr().out


class TestSweepExecutionFlags:
    def test_flags_parse_with_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.jobs == 1 and args.no_cache is False
        args = build_parser().parse_args(["run", "figure9", "--jobs", "4",
                                          "--no-cache"])
        assert args.jobs == 4 and args.no_cache is True

    def test_sweep_parallel_matches_serial_output(self, tmp_path, capsys):
        common = ["--requests", "800", "--schemes", "Ideal", "Hybrid",
                  "--workloads", "gcc", "--no-cache"]
        serial = tmp_path / "serial.json"
        parallel = tmp_path / "parallel.json"
        assert main(["sweep", "--output", str(serial)] + common) == 0
        from repro.experiments.runner import clear_sweep_cache

        clear_sweep_cache()
        assert main(
            ["sweep", "--output", str(parallel), "--jobs", "2"] + common
        ) == 0
        assert serial.read_text() == parallel.read_text()

    def test_sweep_uses_cache_dir_override(self, tmp_path, monkeypatch, capsys):
        from repro.experiments.runner import clear_sweep_cache

        monkeypatch.setenv("READDUO_SWEEP_CACHE", str(tmp_path / "cache"))
        argv = ["sweep", "--requests", "800", "--schemes", "Ideal",
                "--workloads", "gcc", "--output", str(tmp_path / "out.json")]
        assert main(argv) == 0
        entries = list((tmp_path / "cache").glob("*.json"))
        assert len(entries) == 1
        first = (tmp_path / "out.json").read_text()
        clear_sweep_cache()
        # Warm re-run serves from the persistent cache and exports the
        # identical payload.
        assert main(argv) == 0
        assert (tmp_path / "out.json").read_text() == first


class TestSweepCommand:
    def test_sweep_to_file(self, tmp_path, capsys):
        import json

        out = tmp_path / "sweep.json"
        code = main(
            [
                "sweep",
                "--output",
                str(out),
                "--requests",
                "1000",
                "--schemes",
                "Ideal",
                "Hybrid",
                "--workloads",
                "gcc",
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert set(payload["runs"]) == {"gcc"}
        assert set(payload["runs"]["gcc"]) == {"Ideal", "Hybrid"}
        run = payload["runs"]["gcc"]["Hybrid"]
        assert run["execution_time_ns"] > 0
        assert "energy_by_category_pj" in run

    def test_sweep_to_stdout(self, capsys):
        code = main(
            [
                "sweep",
                "--requests",
                "1000",
                "--schemes",
                "Ideal",
                "--workloads",
                "gcc",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert '"runs"' in out

    def test_sweep_stdout_stays_pure_json(self, tmp_path, capsys):
        """`--output -` with progress + telemetry chatter must keep stdout
        machine-parseable; everything human goes to stderr."""
        import json

        code = main(
            [
                "sweep", "--output", "-", "--requests", "800",
                "--schemes", "Ideal", "--workloads", "gcc", "--no-cache",
                "-v", "--metrics", str(tmp_path / "m.json"),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)  # would raise on any stray line
        assert set(payload["runs"]) == {"gcc"}
        assert "telemetry" in payload

    def test_sweep_wrote_note_goes_to_stderr(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        code = main(
            ["sweep", "--output", str(out), "--requests", "800",
             "--schemes", "Ideal", "--workloads", "gcc", "--no-cache"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        assert f"wrote {out}" in captured.err

    def test_sweep_json_unchanged_by_plain_rerun(self, tmp_path, capsys):
        """Without --trace/--metrics, sweep JSON has no telemetry key and is
        byte-identical across cold and warm runs (CI cmp guarantee)."""
        import json

        from repro.experiments.runner import clear_sweep_cache

        argv = ["sweep", "--requests", "800", "--schemes", "Ideal",
                "--workloads", "gcc", "--no-cache", "--output"]
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        assert main(argv + [str(first)]) == 0
        clear_sweep_cache()
        assert main(argv + [str(second), "-v"]) == 0
        assert first.read_bytes() == second.read_bytes()
        assert "telemetry" not in json.loads(first.read_text())


class TestExploreCommand:
    ARGV = ["explore", "--schemes", "LWT-2", "Select-4:2",
            "--workload", "gcc", "--budget", "400", "--base-budget", "200",
            "--no-cache"]

    def test_explore_parses_with_defaults(self):
        args = build_parser().parse_args(["explore"])
        assert args.command == "explore"
        assert args.budget == 8_000
        assert args.eta == 2
        assert args.output == "results/frontier.json"
        assert args.via_serve is None

    def test_explore_writes_frontier_artifact(self, tmp_path, capsys):
        out = tmp_path / "frontier.json"
        assert main(self.ARGV + ["--output", str(out)]) == 0
        captured = capsys.readouterr()
        assert "frontier" in captured.out
        assert f"wrote {out}" in captured.err
        payload = json.loads(out.read_text())
        assert payload["format"] == 1
        assert payload["budgets"] == [200, 400]
        assert payload["objectives"] == ["edap", "fit_margin", "wear"]
        assert payload["frontier"]
        for entry in payload["frontier"]:
            assert set(entry["objectives"]) == {"edap", "fit_margin", "wear"}
            assert entry["run_hash"]
            assert entry["stats"]
        # Every candidate is either on the frontier or in the prune audit.
        ids = {e["id"] for e in payload["frontier"]}
        ids |= {p["id"] for p in payload["pruned"]}
        assert ids == {"LWT-2|E8|S640|base", "Select-4:2|E8|S640|base"}

    def test_explore_stdout_stays_pure_json(self, capsys):
        assert main(self.ARGV + ["--output", "-", "-v"]) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)  # would raise on any stray line
        assert "frontier" in payload
        assert "frontier" in captured.err  # the table moved to stderr

    def test_space_file_conflicts_with_field_flags(self, tmp_path, capsys):
        space = tmp_path / "space.json"
        space.write_text(json.dumps({"schemes": ["LWT-2"]}))
        code = main(["explore", "--space", str(space),
                     "--schemes", "Hybrid", "--no-cache"])
        assert code == 2
        assert "--space conflicts with --schemes" in capsys.readouterr().err

    def test_unknown_scheme_exits_2(self, capsys):
        code = main(["explore", "--schemes", "NoSuchScheme", "--no-cache"])
        assert code == 2
        assert "NoSuchScheme" in capsys.readouterr().err

    def test_space_file_with_families_expands(self, tmp_path, capsys):
        space = tmp_path / "space.json"
        space.write_text(json.dumps({
            "families": {"Select-<k>:<s>": {"k": [4], "s": [1, 2]}},
            "workload": "gcc",
        }))
        out = tmp_path / "frontier.json"
        assert main(["explore", "--space", str(space), "--budget", "400",
                     "--base-budget", "200", "--no-cache",
                     "--output", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["space"]["schemes"] == ["Select-4:1", "Select-4:2"]


class TestObservabilityFlags:
    def test_simulate_accepts_readduo_prefixed_scheme(self, capsys):
        code = main(
            ["simulate", "--workload", "gcc", "--scheme", "readduo-hybrid",
             "--requests", "400"]
        )
        assert code == 0
        assert "scheme=Hybrid" in capsys.readouterr().out

    def test_simulate_writes_trace_and_metrics(self, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        code = main(
            ["simulate", "--workload", "mcf", "--scheme", "Hybrid",
             "--requests", "1500", "--trace", str(trace),
             "--metrics", str(metrics)]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert f"wrote trace {trace}" in captured.err
        assert f"wrote metrics {metrics}" in captured.err
        assert "read latency percentiles" in captured.out

        chrome = json.loads(trace.read_text())
        cats = {e.get("cat") for e in chrome["traceEvents"]}
        assert {"read", "scrub"} <= cats

        dump = json.loads(metrics.read_text())
        assert dump["counters"]["sim.reads"] > 0
        hist = dump["histograms"]["sim.read_latency_ns"]
        assert sum(hist["counts"]) == dump["counters"]["sim.reads"]

    def test_simulate_jsonl_trace(self, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.jsonl"
        code = main(
            ["simulate", "--workload", "gcc", "--scheme", "Ideal",
             "--requests", "400", "--trace", str(trace)]
        )
        assert code == 0
        kinds = {
            json.loads(line)["kind"]
            for line in trace.read_text().splitlines()
        }
        assert "read" in kinds

    def test_sweep_telemetry_block(self, tmp_path, capsys):
        import json

        out = tmp_path / "sweep.json"
        code = main(
            ["sweep", "--output", str(out), "--requests", "800",
             "--schemes", "Ideal", "Hybrid", "--workloads", "gcc",
             "--no-cache", "--metrics", str(tmp_path / "m.json")]
        )
        assert code == 0
        tele = json.loads(out.read_text())["telemetry"]
        assert tele["wall_time_s"] >= 0
        assert tele["cache"] is None  # --no-cache: no counters to report
        assert tele["batches"] and tele["batches"][0]["workload"] == "gcc"
        dump = json.loads((tmp_path / "m.json").read_text())
        assert dump["counters"]["sweep.runs_simulated"] == 2

    def test_verbose_flag_parses_and_stacks(self):
        args = build_parser().parse_args(
            ["simulate", "--workload", "gcc", "--scheme", "Ideal", "-vv"]
        )
        assert args.verbose == 2
        args = build_parser().parse_args(
            ["sweep", "--log-level", "debug", "--trace", "t.json"]
        )
        assert args.log_level == "debug" and args.trace == "t.json"


class TestSweepSpecFile:
    FLAGS = ["--requests", "800", "--seed", "7",
             "--schemes", "Ideal", "Hybrid", "--workloads", "gcc"]
    SPEC = {"schemes": ["Ideal", "Hybrid"], "workloads": ["gcc"],
            "target_requests": 800, "seed": 7}

    def _run(self, argv, tmp_path, name):
        from repro.experiments.runner import clear_sweep_cache

        out = tmp_path / name
        assert main(["sweep", "--output", str(out), "--no-cache"] + argv) == 0
        clear_sweep_cache()
        return out.read_text()

    def test_json_spec_matches_flag_invocation_exactly(self, tmp_path):
        import json

        spec_path = tmp_path / "exp.json"
        spec_path.write_text(json.dumps(self.SPEC))
        from_flags = self._run(self.FLAGS, tmp_path, "flags.json")
        from_spec = self._run(["--spec", str(spec_path)], tmp_path, "spec.json")
        assert from_spec == from_flags

    def test_toml_spec_matches_flag_invocation_exactly(self, tmp_path):
        pytest.importorskip("tomllib")
        spec_path = tmp_path / "exp.toml"
        spec_path.write_text(
            'schemes = ["Ideal", "readduo-hybrid"]\n'
            'workloads = ["gcc"]\n'
            "target_requests = 800\n"
            "seed = 7\n"
        )
        from_flags = self._run(self.FLAGS, tmp_path, "flags.json")
        from_spec = self._run(["--spec", str(spec_path)], tmp_path, "spec.json")
        assert from_spec == from_flags

    @pytest.mark.parametrize(
        "extra", [["--seed", "9"], ["--requests", "100"],
                  ["--schemes", "Ideal"], ["--workloads", "gcc"]]
    )
    def test_spec_conflicts_with_field_flags(self, tmp_path, capsys, extra):
        spec_path = tmp_path / "exp.json"
        spec_path.write_text("{}")
        code = main(["sweep", "--spec", str(spec_path)] + extra)
        assert code == 2
        err = capsys.readouterr().err
        assert "--spec conflicts with" in err and extra[0] in err

    def test_invalid_spec_file_reports_and_exits_2(self, tmp_path, capsys):
        spec_path = tmp_path / "exp.json"
        spec_path.write_text('{"schemes": ["Bogus"]}')
        assert main(["sweep", "--spec", str(spec_path)]) == 2
        assert "unknown schemes: Bogus" in capsys.readouterr().err

    def test_missing_spec_file_reports_and_exits_2(self, tmp_path, capsys):
        assert main(["sweep", "--spec", str(tmp_path / "nope.json")]) == 2
        assert "cannot read spec file" in capsys.readouterr().err


class TestSchemesCommand:
    def test_schemes_lists_names_aliases_and_families(self, capsys):
        assert main(["schemes"]) == 0
        out = capsys.readouterr().out
        assert "Hybrid" in out
        assert "readduo-hybrid" in out
        assert "LWT-<k>[-noconv]" in out
        assert "case-insensitive" in out

    def test_schemes_json_matches_registry_catalog(self, capsys):
        from repro.core.registry import scheme_catalog

        assert main(["schemes", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == json.loads(
            json.dumps(scheme_catalog())  # canonicalized via JSON round-trip
        )


class TestServeParser:
    def test_serve_flags_parse_with_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8787
        assert args.jobs == 1
        assert args.max_inflight == 8
        assert args.max_pending == 64
        assert args.memo_capacity is None
        assert args.ledger is None

    def test_serve_flags_parse_explicit(self):
        args = build_parser().parse_args([
            "serve", "--port", "0", "--jobs", "2", "--no-cache",
            "--memo-capacity", "128", "--max-inflight", "3",
            "--max-pending", "0", "--ledger", "runs.jsonl",
        ])
        assert args.port == 0
        assert args.no_cache is True
        assert args.memo_capacity == 128
        assert args.max_pending == 0

    def test_bench_serve_flags_parse(self):
        args = build_parser().parse_args(["bench", "--serve"])
        assert args.serve is True
        assert args.serve_requests == 2000
