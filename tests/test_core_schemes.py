"""Unit tests for the scheme policies (read/write/scrub state machines)."""

import numpy as np
import pytest

from repro.core.schemes import (
    HybridPolicy,
    IdealPolicy,
    LwtPolicy,
    MMetricPolicy,
    PolicyContext,
    SCHEME_NAMES,
    ScrubbingPolicy,
    SelectPolicy,
    make_policy,
)
from repro.memsim.config import DEFAULT_EPOCH_S, MemoryConfig
from repro.memsim.policy import ReadMode


@pytest.fixture
def ctx(small_profile, small_config):
    return PolicyContext(profile=small_profile, config=small_config, seed=11)


EPOCH = DEFAULT_EPOCH_S


class TestRegistry:
    @pytest.mark.parametrize("name", SCHEME_NAMES)
    def test_every_name_constructs(self, ctx, name):
        policy = make_policy(name, ctx)
        assert policy.name == name or policy.name.startswith(name.split("-")[0])

    def test_unknown_name_raises(self, ctx):
        with pytest.raises(ValueError):
            make_policy("FancyScheme", ctx)

    def test_lwt_k_parsed(self, ctx):
        policy = make_policy("LWT-8", ctx)
        assert isinstance(policy, LwtPolicy)
        assert policy.k == 8

    def test_select_ks_parsed(self, ctx):
        policy = make_policy("Select-4:3", ctx)
        assert isinstance(policy, SelectPolicy)
        assert (policy.k, policy.s) == (4, 3)

    def test_noconv_variant(self, ctx):
        policy = make_policy("LWT-4-noconv", ctx)
        assert not policy.conversion.enabled


class TestIdeal:
    def test_reads_always_fast_and_clean(self, ctx):
        policy = IdealPolicy(ctx)
        decision = policy.on_read(1, EPOCH + 1.0)
        assert decision.mode is ReadMode.R
        assert decision.errors_seen == 0
        assert policy.scrub_interval_s is None

    def test_write_full_line(self, ctx):
        policy = IdealPolicy(ctx)
        decision = policy.on_write(1, EPOCH + 1.0)
        assert decision.full_line
        assert decision.cells_written == ctx.config.cells_per_line_write


class TestScrubbing:
    def test_default_parameters(self, ctx):
        policy = ScrubbingPolicy(ctx)
        assert policy.scrub_interval_s == 8.0
        assert policy.w == 1

    def test_w0_always_rewrites(self, ctx):
        policy = ScrubbingPolicy(ctx, w=0)
        decisions = [policy.on_scrub(line, EPOCH + 1.0) for line in range(20)]
        assert all(d.rewrite for d in decisions)

    def test_w1_rewrites_stochastically(self, ctx):
        policy = ScrubbingPolicy(ctx, w=1)
        rewrites = sum(
            policy.on_scrub(line, EPOCH + 1.0).rewrite for line in range(4000)
        )
        # Renewal hazard is a few percent per scrub.
        assert 0 < rewrites < 1000

    def test_w1_rewrite_resets_renewal_state(self, ctx):
        policy = ScrubbingPolicy(ctx, w=1)
        policy._survived[5] = 10
        policy.rng = np.random.default_rng(0)  # first random() < any hazard?
        # Force the rewrite path by direct state: survived resets on write.
        policy.on_write(5, EPOCH + 1.0)
        assert policy._survived[5] == 0

    def test_reads_are_r_mode(self, ctx):
        policy = ScrubbingPolicy(ctx)
        assert policy.on_read(1, EPOCH + 1.0).mode is ReadMode.R

    def test_rejects_bad_w(self, ctx):
        with pytest.raises(ValueError):
            ScrubbingPolicy(ctx, w=2)


class TestMMetric:
    def test_reads_are_m_mode(self, ctx):
        policy = MMetricPolicy(ctx)
        assert policy.on_read(1, EPOCH + 1.0).mode is ReadMode.M

    def test_scrub_interval_640(self, ctx):
        assert MMetricPolicy(ctx).scrub_interval_s == 640.0

    def test_scrub_rarely_rewrites_fresh_lines(self, ctx):
        policy = MMetricPolicy(ctx)
        policy.record_write(1, EPOCH)
        decision = policy.on_scrub(1, EPOCH + 640.0)
        assert not decision.rewrite  # M errors at 640 s are ~1e-5/line


class TestHybrid:
    def test_recent_line_r_read(self, ctx):
        policy = HybridPolicy(ctx)
        policy.record_write(1, EPOCH)
        decision = policy.on_read(1, EPOCH + 1.0)
        assert decision.mode is ReadMode.R

    def test_scrub_bound_keeps_age_within_interval(self, ctx):
        policy = HybridPolicy(ctx)
        # A line never written in the run: age is bounded by the W=0 sweep.
        age = policy._effective_age(123, EPOCH + 1.0)
        assert age <= policy.scrub_interval_s

    def test_scrub_always_rewrites(self, ctx):
        policy = HybridPolicy(ctx)
        assert policy.on_scrub(9, EPOCH + 1.0).rewrite

    def test_classification_boundaries(self, ctx):
        policy = HybridPolicy(ctx)
        assert policy._classify_r_read(8).mode is ReadMode.R
        assert policy._classify_r_read(9).mode is ReadMode.RM
        assert policy._classify_r_read(17).mode is ReadMode.RM
        beyond = policy._classify_r_read(18)
        assert beyond.mode is ReadMode.R and beyond.silent_corruption


class TestLwt:
    def test_tracked_read_uses_r(self, ctx):
        policy = LwtPolicy(ctx, k=4)
        policy.on_write(1, EPOCH)
        decision = policy.on_read(1, EPOCH + 1.0)
        assert decision.mode is ReadMode.R
        assert decision.flag_access

    def test_untracked_read_uses_rm(self, ctx):
        policy = LwtPolicy(ctx, k=4)
        cold_line = ctx.profile.footprint_lines + 5
        decision = policy.on_read(cold_line, EPOCH + 1.0)
        assert decision.mode is ReadMode.RM

    def test_conversion_retires_untracked_line(self, ctx):
        policy = LwtPolicy(ctx, k=4)
        policy.conversion.t = 100
        cold_line = ctx.profile.footprint_lines + 5
        decision = policy.on_read(cold_line, EPOCH + 1.0)
        assert decision.convert_to_write
        policy.on_conversion_write(cold_line, EPOCH + 1.0)
        decision2 = policy.on_read(cold_line, EPOCH + 2.0)
        assert decision2.mode is ReadMode.R

    def test_write_updates_tracker_and_flags(self, ctx):
        policy = LwtPolicy(ctx, k=4)
        decision = policy.on_write(3, EPOCH)
        assert decision.flag_update
        assert policy.tracker.last_event_s(3, 0.0) == EPOCH

    def test_scrub_w1_rewrite_tracks(self, ctx):
        policy = LwtPolicy(ctx, k=4)
        # Cold line (age 1e6 s): M errors are likely enough to observe a
        # rewrite within a few hundred scrubs.
        cold = ctx.profile.footprint_lines + 50
        rewrote = any(
            policy.on_scrub(cold + i, EPOCH + 1.0).rewrite for i in range(500)
        )
        assert rewrote

    def test_noconv_never_converts(self, ctx):
        policy = LwtPolicy(ctx, k=4, conversion_enabled=False)
        cold_line = ctx.profile.footprint_lines + 5
        decisions = [
            policy.on_read(cold_line, EPOCH + 1.0 + i) for i in range(50)
        ]
        assert not any(d.convert_to_write for d in decisions)


class TestSelect:
    def test_recent_full_write_makes_differential(self, ctx):
        policy = SelectPolicy(ctx, k=4, s=2)
        policy.on_write(1, EPOCH)  # the line's first write is... checked below
        first = policy.on_write(1, EPOCH + 1.0)
        assert not first.full_line
        assert first.cells_written < ctx.config.cells_per_line_write
        assert first.cells_written >= policy._check_cells

    def test_stale_line_gets_full_write(self, ctx):
        policy = SelectPolicy(ctx, k=4, s=1)
        cold_line = ctx.profile.footprint_lines + 9
        decision = policy.on_write(cold_line, EPOCH)
        assert decision.full_line

    def test_differential_does_not_update_tracking(self, ctx):
        policy = SelectPolicy(ctx, k=4, s=2)
        policy.on_write(1, EPOCH)
        before = policy.tracker.last_event_s(1, 0.0)
        policy.on_write(1, EPOCH + 5.0)  # differential
        assert policy.tracker.last_event_s(1, 0.0) == before

    def test_conversion_is_full_write(self, ctx):
        policy = SelectPolicy(ctx, k=4, s=2)
        decision = policy.on_conversion_write(77, EPOCH)
        assert decision.full_line

    def test_s2_more_differential_than_s1(self, ctx):
        results = {}
        for s in (1, 2):
            policy = SelectPolicy(ctx, k=4, s=s)
            diff = sum(
                not policy.on_write(line, EPOCH).full_line
                for line in range(500)
            )
            results[s] = diff
        assert results[2] >= results[1]

    def test_rejects_bad_s(self, ctx):
        with pytest.raises(ValueError):
            SelectPolicy(ctx, s=0)


class TestAgeHelpers:
    def test_scrub_pass_age_within_interval(self, ctx):
        policy = HybridPolicy(ctx)
        for line in (0, 100, ctx.config.total_lines - 1):
            for dt in (0.0, 1.0, 300.0, 639.0):
                age = policy.scrub_pass_age(line, EPOCH + dt)
                assert 0.0 <= age <= policy.scrub_interval_s + 1e-6

    def test_no_scrub_means_infinite_age(self, ctx):
        policy = IdealPolicy(ctx)
        assert policy.scrub_pass_age(0, EPOCH) == float("inf")

    def test_last_write_uses_initial_age(self, ctx):
        policy = IdealPolicy(ctx)
        age = policy.age_of(5, EPOCH)
        assert age == pytest.approx(policy.ages.age_of(5))

    def test_record_write_overrides_initial_age(self, ctx):
        policy = IdealPolicy(ctx)
        policy.record_write(5, EPOCH + 10.0)
        assert policy.age_of(5, EPOCH + 15.0) == pytest.approx(5.0)
