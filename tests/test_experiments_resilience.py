"""Execution-layer resilience: cache quarantine and worker-death recovery.

Two failure families from the ISSUE's resilience requirement:

* **Corrupted granular cache entries** — truncated, garbage-JSON,
  layout-incompatible, or wrong-key files under ``<cache>/runs/`` must be
  quarantined (renamed ``*.bad``) and re-simulated, never raised.
* **Worker-process death** — a killed pool worker breaks the whole
  ``ProcessPoolExecutor``; the executor must requeue the in-flight units
  on a fresh pool (bounded retries), keeping results already collected.
"""

import json
import multiprocessing
import os
from pathlib import Path

import pytest

import repro.experiments.parallel as parallel_mod
from repro.experiments.cache import RunCache, SweepCache
from repro.experiments.planner import build_plan, execute_plan, plan_units
from repro.experiments.runner import SweepSettings, clear_sweep_cache, run_sweep

SMALL = SweepSettings(
    schemes=("Ideal", "Hybrid"),
    workloads=("gcc",),
    target_requests=1_200,
)

N_RUNS = len(SMALL.schemes) * len(SMALL.workloads)


@pytest.fixture(autouse=True)
def clean_cache():
    clear_sweep_cache()
    yield
    clear_sweep_cache()


def _prime(tmp_path):
    """Fill the granular store, then drop the in-process memo."""
    results = execute_plan(build_plan([SMALL]), cache=SweepCache(tmp_path))
    clear_sweep_cache()
    return results


def _granular_files(tmp_path):
    return sorted((tmp_path / "runs").glob("*.json"))


def _truncate(path: Path) -> None:
    text = path.read_text()
    path.write_text(text[: len(text) // 2])


def _garbage(path: Path) -> None:
    path.write_text("{not json")


def _wrong_key(path: Path) -> None:
    payload = json.loads(path.read_text())
    payload["key"] = "0" * 64
    path.write_text(json.dumps(payload))


def _wrong_format(path: Path) -> None:
    payload = json.loads(path.read_text())
    payload["format"] = 999
    path.write_text(json.dumps(payload))


CORRUPTIONS = [_truncate, _garbage, _wrong_key, _wrong_format]


class TestCacheQuarantine:
    @pytest.mark.parametrize("corrupt", CORRUPTIONS)
    def test_corrupt_entries_are_quarantined_and_resimulated(
        self, tmp_path, corrupt
    ):
        good = _prime(tmp_path)
        for path in _granular_files(tmp_path):
            corrupt(path)

        cache = SweepCache(tmp_path)
        plan = build_plan([SMALL])
        results = execute_plan(plan, cache=cache)

        # The run completed, every unit re-simulated, nothing raised.
        assert results.keys() == good.keys()
        assert plan.stats.units_simulated == N_RUNS
        assert plan.stats.units_disk == 0
        assert plan.stats.quarantined == N_RUNS
        assert plan.stats.stale == N_RUNS
        assert cache.counters.quarantined == N_RUNS
        # Each bad file was renamed aside for post-mortems, and the
        # re-simulation stored fresh entries beside them.
        assert len(list((tmp_path / "runs").glob("*.json.bad"))) == N_RUNS
        assert len(_granular_files(tmp_path)) == N_RUNS

    def test_single_corrupt_entry_only_resimulates_that_unit(self, tmp_path):
        _prime(tmp_path)
        victim = _granular_files(tmp_path)[0]
        _truncate(victim)

        plan = build_plan([SMALL])
        results = execute_plan(plan, cache=SweepCache(tmp_path))

        assert len(results) == N_RUNS
        assert plan.stats.quarantined == 1
        assert plan.stats.units_simulated == 1
        assert plan.stats.units_disk == N_RUNS - 1
        assert (tmp_path / "runs" / (victim.name + ".bad")).exists()

    def test_quarantined_rerun_matches_the_original(self, tmp_path):
        good = _prime(tmp_path)
        for path in _granular_files(tmp_path):
            _garbage(path)
        plan = build_plan([SMALL])
        results = execute_plan(plan, cache=SweepCache(tmp_path))
        assert {k: v.to_dict() for k, v in results.items()} == {
            k: v.to_dict() for k, v in good.items()
        }

    def test_bad_files_never_satisfy_loads(self, tmp_path):
        _prime(tmp_path)
        run_cache = RunCache(tmp_path)
        for path in _granular_files(tmp_path):
            _garbage(path)
        keys = [path.stem for path in _granular_files(tmp_path)]
        for key in keys:
            assert run_cache.load(key) is None  # quarantines
            assert run_cache.load(key) is None  # .bad is not retried
        assert run_cache.counters.quarantined == N_RUNS


class TestClearCoversGranularStore:
    def test_post_clear_rerun_simulates_every_unit(self, tmp_path):
        # Satellite regression: clear() used to leave runs/ behind, so a
        # "cold" rerun was silently served from the granular store.
        cache = SweepCache(tmp_path)
        run_sweep(SMALL, jobs=1, cache=cache)
        clear_sweep_cache()
        assert cache.clear() == 1 + N_RUNS

        plan = build_plan([SMALL])
        execute_plan(plan, cache=SweepCache(tmp_path))
        assert plan.stats.units_simulated == N_RUNS
        assert plan.stats.units_cached == 0

    def test_clear_removes_quarantined_files_too(self, tmp_path):
        _prime(tmp_path)
        for path in _granular_files(tmp_path):
            _garbage(path)
        run_cache = RunCache(tmp_path)
        for path in _granular_files(tmp_path):
            run_cache.load(path.stem)
        assert len(list((tmp_path / "runs").glob("*.json.bad"))) == N_RUNS
        assert SweepCache(tmp_path).clear() == N_RUNS  # the .bad files
        assert not list((tmp_path / "runs").glob("*"))


# --------------------------------------------------------------------------
# Worker-death recovery. The crash hooks live at module level so the pool
# can pickle them by reference; with the fork start method the children
# inherit the monkeypatched module state and the marker env var.

_MARKER_ENV = "READDUO_TEST_CRASH_MARKER"

_REAL_TIMED_UNIT = parallel_mod._timed_unit


def _crash_once_timed_unit(spec, workload_name, scheme):
    marker = Path(os.environ[_MARKER_ENV])
    try:
        marker.unlink()
    except FileNotFoundError:
        pass
    else:
        os._exit(1)  # simulate an OOM kill / segfault, exactly once
    return _REAL_TIMED_UNIT(spec, workload_name, scheme)


def _always_crash_timed_unit(spec, workload_name, scheme):
    os._exit(1)


needs_fork = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="crash hooks rely on fork inheritance of patched module state",
)


@needs_fork
class TestWorkerDeathRecovery:
    def test_dead_worker_units_are_requeued_and_finish(
        self, tmp_path, monkeypatch
    ):
        marker = tmp_path / "crash-once"
        marker.touch()
        monkeypatch.setenv(_MARKER_ENV, str(marker))
        monkeypatch.setattr(parallel_mod, "_timed_unit", _crash_once_timed_unit)

        units = plan_units(SMALL)
        results = parallel_mod.run_units_parallel(units, jobs=2)

        assert not marker.exists()  # the crash actually fired
        assert results.keys() == {unit.key for unit in units}
        # Recovery must not disturb determinism: the requeued units match
        # an undisturbed serial execution bit-for-bit.
        for unit in units:
            serial = parallel_mod.simulate_unit(
                unit.spec, unit.workload, unit.scheme
            )
            assert results[unit.key].to_dict() == serial.to_dict()

    def test_repeatedly_fatal_unit_raises_after_bounded_retries(
        self, monkeypatch
    ):
        monkeypatch.setattr(
            parallel_mod, "_timed_unit", _always_crash_timed_unit
        )
        units = plan_units(SMALL)[:1]
        with pytest.raises(RuntimeError, match="worker-process deaths"):
            parallel_mod.run_units_parallel(units, jobs=1, max_retries=1)

    def test_rejects_negative_max_retries(self):
        units = plan_units(SMALL)[:1]
        with pytest.raises(ValueError):
            parallel_mod.run_units_parallel(units, jobs=1, max_retries=-1)
