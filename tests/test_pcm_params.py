"""Unit tests for the Tables I/II/VIII/IX model constants."""

import math

import pytest

from repro.pcm.params import (
    DEFAULT_ENERGY,
    DEFAULT_TIMING,
    EnergyParams,
    GRAY_LEVEL_TO_BITS,
    M_METRIC,
    MetricParams,
    NUM_LEVELS,
    R_METRIC,
    TimingParams,
    bits_to_level,
    hamming_distance_levels,
    level_to_bits,
)


class TestGrayCoding:
    def test_four_levels(self):
        assert NUM_LEVELS == 4
        assert len(GRAY_LEVEL_TO_BITS) == 4

    def test_mapping_matches_paper_figure1(self):
        assert [format(level_to_bits(i), "02b") for i in range(4)] == [
            "01",
            "11",
            "10",
            "00",
        ]

    def test_roundtrip(self):
        for level in range(NUM_LEVELS):
            assert bits_to_level(level_to_bits(level)) == level

    def test_adjacent_levels_differ_by_one_bit(self):
        for level in range(NUM_LEVELS - 1):
            assert hamming_distance_levels(level, level + 1) == 1

    def test_self_distance_zero(self):
        for level in range(NUM_LEVELS):
            assert hamming_distance_levels(level, level) == 0

    def test_two_state_jump_can_cost_two_bits(self):
        assert hamming_distance_levels(0, 2) == 2


class TestRMetric:
    def test_means_are_decades_3_to_6(self):
        assert R_METRIC.mu == (3.0, 4.0, 5.0, 6.0)

    def test_sigma_one_sixth(self):
        assert R_METRIC.sigma == pytest.approx(1 / 6)

    def test_drift_means_match_table1(self):
        assert R_METRIC.mu_alpha == (0.001, 0.02, 0.06, 0.10)

    def test_sigma_alpha_is_40_percent(self):
        for mu_a, sigma_a in zip(R_METRIC.mu_alpha, R_METRIC.sigma_alpha):
            assert sigma_a == pytest.approx(0.4 * mu_a)

    def test_thresholds_at_half_decades(self):
        assert R_METRIC.thresholds == pytest.approx((3.5, 4.5, 5.5))

    def test_guard_band(self):
        assert R_METRIC.guard_band_sigma() == pytest.approx(3.0 - 2.746)

    def test_top_level_has_no_boundary(self):
        with pytest.raises(ValueError):
            R_METRIC.upper_boundary(3)

    def test_drift_shift_zero_before_t0(self):
        assert R_METRIC.drift_shift(2, 0.5) == 0.0

    def test_drift_shift_one_decade(self):
        assert R_METRIC.drift_shift(2, 10.0) == pytest.approx(0.06)

    def test_read_latency(self):
        assert R_METRIC.read_latency_ns == 150.0


class TestMMetric:
    def test_means_four_decades_below_r(self):
        for mu_m, mu_r in zip(M_METRIC.mu, R_METRIC.mu):
            assert mu_m == pytest.approx(mu_r - 4.0)

    def test_drift_roughly_one_seventh(self):
        # Levels 1..3 follow the ~1/7 rule the paper cites.
        for level in (1, 2, 3):
            ratio = M_METRIC.mu_alpha[level] / R_METRIC.mu_alpha[level]
            assert 0.1 < ratio < 0.2

    def test_read_latency_450ns(self):
        assert M_METRIC.read_latency_ns == 450.0


class TestMetricParamsValidation:
    def test_rejects_wrong_level_count(self):
        with pytest.raises(ValueError):
            MetricParams(name="X", mu=(1.0, 2.0), sigma=0.1, mu_alpha=(0.1, 0.1))

    def test_rejects_nonincreasing_means(self):
        with pytest.raises(ValueError):
            MetricParams(
                name="X",
                mu=(1.0, 3.0, 2.0, 4.0),
                sigma=0.1,
                mu_alpha=(0.1,) * 4,
            )

    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            MetricParams(
                name="X", mu=(1.0, 2.0, 3.0, 4.0), sigma=-0.1, mu_alpha=(0.1,) * 4
            )

    def test_rejects_negative_alpha(self):
        with pytest.raises(ValueError):
            MetricParams(
                name="X",
                mu=(1.0, 2.0, 3.0, 4.0),
                sigma=0.1,
                mu_alpha=(0.1, 0.1, -0.1, 0.1),
            )

    def test_rejects_program_width_beyond_boundary(self):
        with pytest.raises(ValueError):
            MetricParams(
                name="X",
                mu=(1.0, 2.0, 3.0, 4.0),
                sigma=0.1,
                mu_alpha=(0.1,) * 4,
                program_width_sigma=3.5,
                boundary_sigma=3.0,
            )

    def test_replace_produces_modified_copy(self):
        faster = R_METRIC.replace(read_latency_ns=100.0)
        assert faster.read_latency_ns == 100.0
        assert R_METRIC.read_latency_ns == 150.0


class TestTiming:
    def test_rm_read_is_sum(self):
        assert DEFAULT_TIMING.rm_read_ns == pytest.approx(
            DEFAULT_TIMING.r_read_ns + DEFAULT_TIMING.m_read_ns
        )

    def test_cycle_time(self):
        timing = TimingParams(cpu_freq_ghz=2.0)
        assert timing.cycle_ns == pytest.approx(0.5)

    def test_rejects_nonpositive_latency(self):
        with pytest.raises(ValueError):
            TimingParams(r_read_ns=0.0)


class TestEnergy:
    def test_read_energy_scales_with_bits(self):
        assert DEFAULT_ENERGY.read_energy_pj("R", 512) == pytest.approx(
            512 * DEFAULT_ENERGY.r_read_pj_per_bit
        )

    def test_rm_read_is_sum_of_both(self):
        rm = DEFAULT_ENERGY.read_energy_pj("RM", 512)
        r = DEFAULT_ENERGY.read_energy_pj("R", 512)
        m = DEFAULT_ENERGY.read_energy_pj("M", 512)
        assert rm == pytest.approx(r + m)

    def test_unknown_metric_raises(self):
        with pytest.raises(ValueError):
            DEFAULT_ENERGY.read_energy_pj("Q", 512)

    def test_write_energy_per_cell(self):
        assert DEFAULT_ENERGY.write_energy_pj(296) == pytest.approx(
            296 * DEFAULT_ENERGY.write_pj_per_cell
        )

    def test_m_read_costs_more_than_r(self):
        assert (
            DEFAULT_ENERGY.m_read_pj_per_bit > DEFAULT_ENERGY.r_read_pj_per_bit
        )

    def test_rejects_negative_energy(self):
        with pytest.raises(ValueError):
            EnergyParams(r_read_pj_per_bit=-1.0)

    def test_math_is_finite(self):
        assert math.isfinite(DEFAULT_ENERGY.read_energy_pj("M", 512))
