"""Tests for the run-level execution planner.

Covers the ISSUE-mandated behaviours: per-run cache migration from
legacy whole-sweep entries, cross-artifact deduplication (asserted via
the ``plan.*`` counters), and work-stealing determinism across job
counts.
"""

import pytest

from repro.experiments.cache import RUN_CACHE_SUBDIR, RunCache, SweepCache
from repro.experiments.planner import (
    DEFAULT_RUN_MEMO_CAPACITY,
    PlanStats,
    build_plan,
    execute_plan,
    plan_units,
    run_memo_capacity,
    run_memo_size,
    set_run_memo_capacity,
)
from repro.experiments.runner import clear_sweep_cache, run_sweep
from repro.experiments.spec import SimSpec
from repro.obs import MetricsRegistry, Telemetry, Tracer


@pytest.fixture(autouse=True)
def clean_memo():
    clear_sweep_cache()
    yield
    clear_sweep_cache()


SMALL = SimSpec(
    schemes=("Ideal", "Hybrid"),
    workloads=("gcc", "mcf"),
    target_requests=1_000,
)

#: Overlaps SMALL in (gcc, Ideal) and (gcc, Hybrid); adds (gcc, LWT-4).
OVERLAPPING = SimSpec(
    schemes=("Ideal", "Hybrid", "LWT-4"),
    workloads=("gcc",),
    target_requests=1_000,
)


def _flat(grid):
    return [
        (w, s, stats.to_dict())
        for w, per_scheme in grid.items()
        for s, stats in per_scheme.items()
    ]


class TestPlanning:
    def test_units_cover_the_grid_in_canonical_order(self):
        units = plan_units(SMALL)
        assert [(u.workload, u.scheme) for u in units] == [
            ("gcc", "Ideal"), ("gcc", "Hybrid"),
            ("mcf", "Ideal"), ("mcf", "Hybrid"),
        ]

    def test_unit_keys_are_sub_spec_hashes(self):
        unit = plan_units(SMALL)[0]
        assert unit.key == SMALL.run_hash("gcc", "Ideal")
        assert unit.spec == SMALL.run_subspec("gcc", "Ideal")

    def test_shared_pairs_hash_equal_across_specs(self):
        assert SMALL.run_hash("gcc", "Ideal") == OVERLAPPING.run_hash(
            "gcc", "Ideal"
        )

    def test_build_plan_dedupes_across_specs(self):
        plan = build_plan([SMALL, OVERLAPPING])
        assert plan.stats.units_total == 7  # 4 + 3 requested
        assert plan.stats.units_deduped == 2  # two shared pairs folded
        assert len(plan.units) == 5

    def test_identical_specs_fold_completely(self):
        plan = build_plan([SMALL, SMALL])
        assert plan.stats.units_deduped == len(plan_units(SMALL))
        assert len(plan.units) == len(plan_units(SMALL))


class TestCrossArtifactDedup:
    def test_shared_units_simulate_once_via_plan_counters(self):
        tele = Telemetry(tracer=Tracer(), metrics=MetricsRegistry())
        plan = build_plan([SMALL, OVERLAPPING])
        execute_plan(plan, jobs=1, telemetry=tele)
        counters = tele.metrics.to_dict()["counters"]
        assert counters["plan.units_total"] == 7
        assert counters["plan.units_deduped"] == 2
        assert counters["plan.units_simulated"] == 5
        assert counters["plan.units_cached"] == 0

    def test_planned_prewarm_makes_second_artifact_free(self):
        plan = build_plan([SMALL, OVERLAPPING])
        execute_plan(plan, jobs=1)
        # Both artifacts' sweeps now resolve from the shared run memo.
        for spec in (SMALL, OVERLAPPING):
            follow_up = build_plan([spec])
            execute_plan(follow_up, jobs=1)
            assert follow_up.stats.units_simulated == 0
            assert follow_up.stats.units_memo == len(follow_up.units)

    def test_fan_out_grids_match_independent_sweeps(self):
        plan = build_plan([SMALL, OVERLAPPING])
        results = execute_plan(plan, jobs=1)
        shared_grid = plan.grid_for(SMALL, results)
        clear_sweep_cache()
        direct = run_sweep(SMALL, jobs=1)
        assert _flat(shared_grid) == _flat(direct)


class TestMigration:
    def test_whole_sweep_entry_serves_granular_hits(self, tmp_path, monkeypatch):
        # Simulate once with *only* a whole-sweep entry on disk (the
        # pre-planner layout), then re-plan against it.
        legacy = SweepCache(tmp_path)
        grid = run_sweep(SMALL, jobs=1)
        legacy.store(SMALL, grid)
        clear_sweep_cache()

        import repro.experiments.planner as planner_mod

        def explode(*_args, **_kwargs):
            raise AssertionError("migration must not simulate")

        monkeypatch.setattr(planner_mod, "simulate_unit", explode)
        monkeypatch.setattr(planner_mod, "run_units_parallel", explode)
        plan = build_plan([SMALL])
        results = execute_plan(plan, jobs=1, cache=SweepCache(tmp_path))
        assert plan.stats.units_migrated == len(plan.units)
        assert plan.stats.units_simulated == 0
        assert _flat(plan.grid_for(SMALL, results)) == _flat(grid)

    def test_migrated_units_are_restored_granularly(self, tmp_path):
        legacy = SweepCache(tmp_path)
        legacy.store(SMALL, run_sweep(SMALL, jobs=1))
        clear_sweep_cache()
        run_dir = tmp_path / RUN_CACHE_SUBDIR
        assert not run_dir.exists()
        plan = build_plan([SMALL])
        execute_plan(plan, jobs=1, cache=SweepCache(tmp_path))
        assert len(list(run_dir.glob("*.json"))) == len(plan.units)
        # Next planner pass hits the granular store directly.
        clear_sweep_cache()
        second = build_plan([SMALL])
        execute_plan(second, jobs=1, cache=SweepCache(tmp_path))
        assert second.stats.units_disk == len(second.units)
        assert second.stats.units_migrated == 0

    def test_partial_overlap_migrates_only_shared_units(self, tmp_path):
        legacy = SweepCache(tmp_path)
        legacy.store(SMALL, run_sweep(SMALL, jobs=1))
        clear_sweep_cache()
        plan = build_plan([OVERLAPPING])
        execute_plan(plan, jobs=1, cache=SweepCache(tmp_path))
        # (gcc, Ideal) and (gcc, Hybrid) exist only inside SMALL's legacy
        # entry, which OVERLAPPING's planner pass cannot see (different
        # sweep key); only genuinely new units simulate on top.
        assert plan.stats.units_simulated == len(plan.units)


class TestRunCacheStore:
    def test_store_then_load_round_trips(self, tmp_path):
        grid = run_sweep(SMALL, jobs=1)
        store = RunCache(tmp_path)
        key = SMALL.run_hash("gcc", "Ideal")
        store.store(key, grid["gcc"]["Ideal"])
        reloaded = RunCache(tmp_path).load(key)
        assert reloaded is not None
        assert reloaded.to_dict() == grid["gcc"]["Ideal"].to_dict()

    def test_miss_and_clear(self, tmp_path):
        store = RunCache(tmp_path)
        assert store.load("deadbeef") is None
        assert store.counters.misses == 1
        grid = run_sweep(SMALL, jobs=1)
        store.store(SMALL.run_hash("gcc", "Ideal"), grid["gcc"]["Ideal"])
        assert store.clear() == 1

    def test_corrupt_entry_counts_stale(self, tmp_path):
        store = RunCache(tmp_path)
        grid = run_sweep(SMALL, jobs=1)
        key = SMALL.run_hash("gcc", "Ideal")
        store.store(key, grid["gcc"]["Ideal"])
        store.path_for(key).write_text("{not json")
        fresh = RunCache(tmp_path)
        assert fresh.load(key) is None
        assert fresh.counters.stale == 1


class TestWorkStealingDeterminism:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_results_identical_across_job_counts(self, jobs):
        serial = run_sweep(SMALL, jobs=1)
        clear_sweep_cache()
        parallel = run_sweep(SMALL, jobs=jobs)
        assert _flat(serial) == _flat(parallel)


SINGLE = SimSpec(schemes=("Ideal",), workloads=("gcc",), target_requests=1_000)


class TestPlanEdgeCases:
    def test_empty_plan_executes_to_empty_results(self):
        plan = build_plan([])
        assert plan.units == ()
        assert execute_plan(plan, jobs=1) == {}
        assert plan.stats.as_dict()["units_total"] == 0
        assert plan.stats.units_cached == 0

    def test_single_unit_plan_stats(self):
        plan = build_plan([SINGLE])
        results = execute_plan(plan, jobs=1)
        stats = plan.stats.as_dict()
        assert stats["units_total"] == 1
        assert stats["units_simulated"] == 1
        assert stats["units_deduped"] == 0
        grid = plan.grid_for(SINGLE, results)
        assert list(grid) == ["gcc"]
        assert list(grid["gcc"]) == ["Ideal"]

    def test_all_cached_plan_reports_zero_simulated(self):
        execute_plan(build_plan([SMALL]), jobs=1)
        warm = build_plan([SMALL])
        execute_plan(warm, jobs=1)
        stats = warm.stats.as_dict()
        assert stats["units_simulated"] == 0
        assert stats["units_cached"] == stats["units_total"] == len(warm.units)
        assert stats["units_memo"] == len(warm.units)

    def test_grid_for_subset_spec_of_larger_plan(self):
        plan = build_plan([SMALL, OVERLAPPING])
        results = execute_plan(plan, jobs=1)
        grid = plan.grid_for(OVERLAPPING, results)
        assert [(w, s) for w in grid for s in grid[w]] == [
            ("gcc", "Ideal"), ("gcc", "Hybrid"), ("gcc", "LWT-4"),
        ]

    def test_as_dict_keys_are_stable(self):
        # readduo report and the CI smokes key off these names.
        assert set(PlanStats().as_dict()) == {
            "units_total", "units_cached", "units_simulated",
            "units_deduped", "units_memo", "units_disk", "units_migrated",
            "stale", "quarantined", "schedule_wall_s",
        }


class TestRunMemoLRU:
    @pytest.fixture(autouse=True)
    def restore_capacity(self):
        previous = run_memo_capacity()
        yield
        set_run_memo_capacity(previous)

    def test_default_capacity(self):
        assert run_memo_capacity() == DEFAULT_RUN_MEMO_CAPACITY

    def test_capacity_bounds_the_memo(self):
        set_run_memo_capacity(2)
        execute_plan(build_plan([SMALL]), jobs=1)  # 4 units through a cap of 2
        assert run_memo_size() == 2

    def test_shrinking_evicts_immediately(self):
        execute_plan(build_plan([SMALL]), jobs=1)
        assert run_memo_size() == 4
        set_run_memo_capacity(1)
        assert run_memo_size() == 1

    def test_eviction_falls_back_to_disk_not_resimulation(self, tmp_path):
        cache = SweepCache(tmp_path)
        execute_plan(build_plan([SMALL]), jobs=1, cache=cache)
        set_run_memo_capacity(1)  # evicts 3 of the 4 memoized runs
        warm = build_plan([SMALL])
        execute_plan(warm, jobs=1, cache=SweepCache(tmp_path))
        assert warm.stats.units_simulated == 0
        assert warm.stats.units_disk == 3
        assert warm.stats.units_memo == 1

    def test_hit_refreshes_recency(self):
        set_run_memo_capacity(4)
        execute_plan(build_plan([SMALL]), jobs=1)
        # Touch the oldest entry (gcc/Ideal), then push one new unit in:
        # the refreshed entry must survive and the true LRU go.
        execute_plan(build_plan([SINGLE]), jobs=1)
        lwt = SimSpec(
            schemes=("LWT-4",), workloads=("gcc",), target_requests=1_000
        )
        execute_plan(build_plan([lwt]), jobs=1)
        probe = build_plan([SINGLE])
        execute_plan(probe, jobs=1)
        assert probe.stats.units_memo == 1

    def test_set_capacity_returns_previous_and_rejects_nonpositive(self):
        previous = run_memo_capacity()
        assert set_run_memo_capacity(7) == previous
        assert run_memo_capacity() == 7
        with pytest.raises(ValueError):
            set_run_memo_capacity(0)


class TestSweepCacheHitCounter:
    def test_warm_sweep_counts_cache_hits(self, tmp_path):
        run_sweep(SMALL, jobs=1, cache=SweepCache(tmp_path))
        clear_sweep_cache()
        tele = Telemetry(tracer=Tracer(), metrics=MetricsRegistry())
        run_sweep(SMALL, jobs=1, cache=SweepCache(tmp_path), telemetry=tele)
        counters = tele.metrics.to_dict()["counters"]
        n_runs = len(SMALL.schemes) * len(SMALL.workloads)
        assert counters["sweep.cache_hits"] == n_runs
        assert "sweep.runs_simulated" not in counters
        kinds = [r["kind"] for r in tele.tracer.records]
        assert "sweep_cache" in kinds


class TestLeaseBatch:
    """Coordinator batch selection: workload affinity, bounded size."""

    def test_empty_pending_gives_empty_batch(self):
        from repro.experiments.planner import lease_batch

        assert lease_batch([], 4) == []

    def test_max_units_must_be_positive(self):
        from repro.experiments.planner import lease_batch

        with pytest.raises(ValueError):
            lease_batch(build_plan([SMALL]).units, 0)

    def test_prefers_anchor_workload_then_pads_oldest(self):
        from repro.experiments.planner import lease_batch

        units = build_plan([SMALL]).units  # gcc x2 then mcf x2
        batch = lease_batch(units, 3)
        assert len(batch) == 3
        anchor = units[0].workload
        # Both anchor-workload units come first (trace-memo locality),
        # then the oldest remaining unit pads the batch.
        assert [u.workload for u in batch[:2]] == [anchor, anchor]
        assert batch[2].workload != anchor

    def test_cap_respected(self):
        from repro.experiments.planner import lease_batch

        units = build_plan([SMALL]).units
        assert len(lease_batch(units, 1)) == 1
        assert len(lease_batch(units, 100)) == len(units)


class TestLookupCached:
    def test_memo_then_disk_tiers(self, tmp_path):
        from repro.experiments.planner import lookup_cached

        cache = SweepCache(tmp_path)
        run_sweep(SMALL, jobs=1, cache=cache)  # warm memo + disk
        units = build_plan([SMALL]).units
        store = RunCache(tmp_path)

        cached, tiers = lookup_cached(units, store)
        assert set(cached) == {u.key for u in units}
        assert all(tier == "memo" for tier in tiers.values())

        clear_sweep_cache()
        cached, tiers = lookup_cached(units, store)
        assert set(cached) == {u.key for u in units}
        assert all(tier == "disk" for tier in tiers.values())
        # Disk hits are promoted: a second lookup is memo-tier.
        _cached, tiers = lookup_cached(units, store)
        assert all(tier == "memo" for tier in tiers.values())

    def test_unresolved_units_are_absent(self):
        from repro.experiments.planner import lookup_cached

        units = build_plan([SMALL]).units
        cached, tiers = lookup_cached(units, None)
        assert cached == {} and tiers == {}
