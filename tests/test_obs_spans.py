"""Tests for hierarchical span tracing (repro.obs.spans).

Covers the ISSUE-mandated behaviours: span trees stay well-formed when
run units execute in worker processes, unit results are identical across
job counts with tracing attached, and every emitted span record
validates against the checked-in schema.
"""

import pickle

import pytest

from repro.experiments.planner import build_plan, execute_plan
from repro.experiments.runner import clear_sweep_cache
from repro.experiments.spec import SimSpec
from repro.obs import Telemetry, Tracer, chrome_trace_events
from repro.obs.schema import load_schema, validate_record
from repro.obs.spans import (
    SpanContext,
    SpanTracker,
    current_tracker,
    maybe_span,
    span_tree_errors,
    tracker_scope,
)

SMALL = SimSpec(
    schemes=("Ideal", "Hybrid"),
    workloads=("gcc", "mcf"),
    target_requests=1_000,
)


@pytest.fixture(autouse=True)
def clean_memo():
    clear_sweep_cache()
    yield
    clear_sweep_cache()


class TestSpanTracker:
    def test_nested_spans_link_to_parents(self):
        records = []
        tracker = SpanTracker(records.append)
        with tracker.span("outer") as outer:
            with tracker.span("inner", depth=2):
                pass
        inner, outer_rec = records  # children close (emit) first
        assert inner["name"] == "inner"
        assert inner["parent"] == outer.context.span
        assert outer_rec["parent"] is None
        assert inner["trace"] == outer_rec["trace"] == tracker.trace_id
        assert inner["attrs"] == {"depth": 2}
        assert inner["dur_s"] >= 0.0

    def test_root_carrier_parents_worker_spans(self):
        # A worker tracker built from a carrier nests its otherwise
        # parentless spans under the executor's span across the pickle
        # boundary.
        carrier = SpanContext(trace="t1", span="exec-1")
        carrier = pickle.loads(pickle.dumps(carrier))
        records = []
        tracker = SpanTracker(records.append, trace_id=carrier.trace, root=carrier)
        with tracker.span("unit.simulate"):
            pass
        assert records[0]["parent"] == "exec-1"
        assert records[0]["trace"] == "t1"

    def test_set_attr_lands_in_record(self):
        records = []
        tracker = SpanTracker(records.append)
        with tracker.span("s") as span:
            span.set_attr("hit", True)
        assert records[0]["attrs"]["hit"] is True

    def test_span_ids_unique_across_trackers_in_one_process(self):
        # Workers build one tracker per run unit; a per-tracker counter
        # would restart and collide. The module-global counter must not.
        ids = []
        for _ in range(3):
            records = []
            tracker = SpanTracker(records.append)
            with tracker.span("unit"):
                pass
            ids.append(records[0]["span"])
        assert len(set(ids)) == 3

    def test_maybe_span_is_noop_without_tracker(self):
        assert current_tracker() is None
        with maybe_span("anything", key=1) as span:
            span.set_attr("ignored", True)  # absorbed, no error

    def test_tracker_scope_activates_and_restores(self):
        records = []
        tracker = SpanTracker(records.append)
        with tracker_scope(tracker):
            assert current_tracker() is tracker
            with maybe_span("inside", n=1):
                pass
        assert current_tracker() is None
        assert records[0]["name"] == "inside"


class TestSpanTreeErrors:
    def _span(self, span, parent=None, trace="t"):
        return {"kind": "span", "span": span, "parent": parent,
                "trace": trace, "name": span}

    def test_clean_tree_passes(self):
        records = [self._span("a"), self._span("b", parent="a")]
        assert span_tree_errors(records) == []

    def test_orphan_parent_flagged(self):
        errors = span_tree_errors([self._span("b", parent="missing")])
        assert any("orphan" in e for e in errors)

    def test_duplicate_ids_flagged(self):
        errors = span_tree_errors([self._span("a"), self._span("a")])
        assert any("duplicate" in e for e in errors)

    def test_cross_trace_parent_flagged(self):
        records = [
            self._span("a", trace="t1"),
            self._span("b", parent="a", trace="t2"),
        ]
        assert any("crosses traces" in e for e in span_tree_errors(records))

    def test_non_span_records_ignored(self):
        assert span_tree_errors([{"kind": "read", "core": 0}]) == []


class TestPipelineSpans:
    """execute_plan span integration, serial and parallel."""

    def _run(self, jobs):
        tele = Telemetry(tracer=Tracer())
        plan = build_plan([SMALL])
        results = execute_plan(plan, jobs=jobs, telemetry=tele)
        spans = [r for r in tele.tracer.records if r.get("kind") == "span"]
        return spans, results

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_tree_well_formed_and_units_stable_across_jobs(self, jobs):
        spans, results = self._run(jobs)
        assert span_tree_errors(spans) == []
        assert len({s["trace"] for s in spans}) == 1
        names = {s["name"] for s in spans}
        assert {"plan.execute", "unit.simulate"} <= names
        # Stable unit content: the spans observe, never perturb.
        clear_sweep_cache()
        _, serial = self._run(1)
        assert results.keys() == serial.keys()
        for key in results:
            assert results[key].to_dict() == serial[key].to_dict()

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_records_validate_against_schema(self, jobs):
        schema = load_schema("span")
        spans, _ = self._run(jobs)
        assert spans
        for record in spans:
            assert validate_record(record, schema) == []

    def test_unit_spans_carry_provenance_attrs(self):
        spans, _ = self._run(1)
        units = [s for s in spans if s["name"] == "unit.simulate"]
        assert len(units) == len(SMALL.schemes) * len(SMALL.workloads)
        for span in units:
            assert span["attrs"]["engine"] in ("batch", "event")
            assert span["attrs"]["fastpath"] in (
                "speculated", "fallback", "no_native", None
            )

    def test_worker_spans_nest_under_executor(self):
        spans, _ = self._run(2)
        executor = next(s for s in spans if s["name"] == "executor.run")
        units = [s for s in spans if s["name"] == "unit.simulate"]
        assert units
        by_id = {s["span"]: s for s in spans}
        for unit in units:
            # Walk up: every worker unit span reaches the executor span.
            node = unit
            while node["parent"] is not None and node["span"] != executor["span"]:
                node = by_id[node["parent"]]
            assert node["span"] == executor["span"]

    def test_warm_plan_emits_cache_spans_not_unit_spans(self):
        self._run(1)  # prime the in-process memo
        tele = Telemetry(tracer=Tracer())
        plan = build_plan([SMALL])
        execute_plan(plan, jobs=1, telemetry=tele)
        names = [r["name"] for r in tele.tracer.records
                 if r.get("kind") == "span"]
        assert "cache.memo" in names
        assert "unit.simulate" not in names

    def test_chrome_export_gives_spans_their_own_pid_lanes(self):
        spans, _ = self._run(2)
        events = chrome_trace_events(spans)
        lanes = {e["args"]["name"] for e in events if e["ph"] == "M"}
        span_lanes = {n for n in lanes if n.startswith("pipeline spans")}
        pids = {s["pid"] for s in spans}
        assert len(span_lanes) == len(pids)
        xs = [e for e in events if e["ph"] == "X" and e.get("cat") == "span"]
        assert len(xs) == len(spans)
        assert min(e["ts"] for e in xs) == 0.0  # rebased to earliest span
