"""Unit tests for the event-driven memory-system engine.

Engine mechanics are tested with a minimal scripted policy so the
behaviour under test is the simulator's, not a scheme's.
"""

import numpy as np
import pytest

from repro.memsim.config import MemoryConfig
from repro.memsim.engine import MemorySystemSim, simulate
from repro.memsim.policy import (
    ReadDecision,
    ReadMode,
    ScrubDecision,
    WriteDecision,
)
from repro.traces.trace import OP_READ, OP_WRITE, Trace


class ScriptedPolicy:
    """A policy with fixed decisions, for engine-mechanics tests."""

    name = "scripted"
    scrub_interval_s = None

    def __init__(self, read_mode=ReadMode.R, convert=False, scrub_rewrite=False):
        self.read_mode = read_mode
        self.convert = convert
        self.scrub_rewrite = scrub_rewrite
        self.reads = []
        self.writes = []
        self.scrubs = []

    def on_read(self, line, now_s):
        self.reads.append((line, now_s))
        return ReadDecision(mode=self.read_mode, convert_to_write=self.convert)

    def on_write(self, line, now_s):
        self.writes.append((line, now_s))
        return WriteDecision(cells_written=296, full_line=True)

    def on_conversion_write(self, line, now_s):
        return WriteDecision(cells_written=296, full_line=True)

    def on_scrub(self, line, now_s):
        self.scrubs.append(line)
        return ScrubDecision(
            metric="M",
            rewrite=self.scrub_rewrite,
            cells_written=296 if self.scrub_rewrite else 0,
        )


def _trace(ops, cores=None, lines=None, gaps=None, name="t"):
    n = len(ops)
    return Trace(
        op=np.asarray(ops),
        core=np.asarray(cores if cores is not None else [0] * n),
        line=np.asarray(lines if lines is not None else list(range(n))),
        gap=np.asarray(gaps if gaps is not None else [0] * n),
        name=name,
    )


@pytest.fixture
def config():
    return MemoryConfig(total_lines=1 << 14, num_banks=2)


class TestSingleRequests:
    def test_one_read_latency(self, config):
        trace = _trace([OP_READ], gaps=[0])
        stats = simulate(trace, ScriptedPolicy(), config)
        # 150 ns sensing + 7.5 ns channel transfer.
        assert stats.execution_time_ns == pytest.approx(157.5)
        assert stats.reads == 1

    def test_gap_delays_issue(self, config):
        trace = _trace([OP_READ], gaps=[100])
        stats = simulate(trace, ScriptedPolicy(), config)
        cycle = config.timing.cycle_ns
        assert stats.execution_time_ns == pytest.approx(157.5 + 100 * cycle)

    def test_m_read_latency(self, config):
        trace = _trace([OP_READ])
        stats = simulate(trace, ScriptedPolicy(read_mode=ReadMode.M), config)
        assert stats.execution_time_ns == pytest.approx(457.5)
        assert stats.reads_by_mode == {"M": 1}

    def test_rm_read_latency(self, config):
        trace = _trace([OP_READ])
        stats = simulate(trace, ScriptedPolicy(read_mode=ReadMode.RM), config)
        assert stats.execution_time_ns == pytest.approx(607.5)

    def test_write_does_not_block_core(self, config):
        trace = _trace([OP_WRITE, OP_READ], lines=[0, 1], gaps=[0, 0])
        stats = simulate(trace, ScriptedPolicy(), config)
        # The write retires into the buffer; the read (different bank)
        # proceeds immediately.
        assert stats.execution_time_ns == pytest.approx(157.5)
        assert stats.writes == 1


class TestBankContention:
    def test_same_bank_reads_serialize(self, config):
        # Two cores read different lines on the same bank at t=0.
        trace = _trace(
            [OP_READ, OP_READ], cores=[0, 1], lines=[0, 2], gaps=[0, 0]
        )
        stats = simulate(trace, ScriptedPolicy(), config)
        assert stats.execution_time_ns == pytest.approx(2 * 150 + 7.5)

    def test_different_banks_parallel(self, config):
        trace = _trace(
            [OP_READ, OP_READ], cores=[0, 1], lines=[0, 1], gaps=[0, 0]
        )
        stats = simulate(trace, ScriptedPolicy(), config)
        # Sensing overlaps; transfers serialize on the channel.
        assert stats.execution_time_ns == pytest.approx(150 + 2 * 7.5)

    def test_read_priority_over_queued_write(self, config):
        # Same core: write enqueues, then a read to the same bank. The
        # read must be serviced before the buffered write drains.
        trace = _trace(
            [OP_WRITE, OP_READ], cores=[0, 0], lines=[0, 2], gaps=[0, 0]
        )
        stats = simulate(trace, ScriptedPolicy(), config)
        assert stats.execution_time_ns == pytest.approx(157.5)


class TestWriteCancellation:
    def test_read_cancels_inflight_write(self, config):
        # Core 0 writes (drains immediately as the bank is idle); core 1's
        # read arrives 100 ns in (progress 10% < 50%) and cancels it.
        trace = _trace(
            [OP_WRITE, OP_READ],
            cores=[0, 1],
            lines=[0, 2],
            gaps=[0, 200],  # 200 cycles @ 0.5 ns = 100 ns
        )
        stats = simulate(trace, ScriptedPolicy(), config)
        assert stats.cancelled_writes == 1
        assert stats.execution_time_ns == pytest.approx(100 + 150 + 7.5)

    def test_late_read_waits_for_write(self, config):
        # Read arrives at 80% write progress: no cancellation.
        trace = _trace(
            [OP_WRITE, OP_READ],
            cores=[0, 1],
            lines=[0, 2],
            gaps=[0, 1600],  # 800 ns in
        )
        stats = simulate(trace, ScriptedPolicy(), config)
        assert stats.cancelled_writes == 0
        assert stats.execution_time_ns == pytest.approx(1000 + 150 + 7.5)

    def test_cancelled_write_still_completes_eventually(self, config):
        trace = _trace(
            [OP_WRITE, OP_READ],
            cores=[0, 1],
            lines=[0, 2],
            gaps=[0, 200],
        )
        stats = simulate(trace, ScriptedPolicy(), config)
        # The flush accounts the restarted write's full energy.
        assert stats.wear.by_cause.get("demand", 0) == 296


class TestWriteQueuePressure:
    def test_full_queue_blocks_core(self):
        config = MemoryConfig(
            total_lines=1 << 14,
            num_banks=1,
            write_queue_depth=2,
            write_drain_watermark=2,
        )
        # Four writes to one bank: queue depth 2 forces blocking.
        trace = _trace(
            [OP_WRITE] * 4, cores=[0] * 4, lines=[0, 1, 2, 3], gaps=[0] * 4
        )
        stats = simulate(trace, ScriptedPolicy(), config)
        assert stats.writes == 4
        # The last write cannot retire until queue slots free up.
        assert stats.execution_time_ns >= 1000.0


class TestConversion:
    def test_conversion_enqueues_write(self, config):
        trace = _trace([OP_READ])
        stats = simulate(trace, ScriptedPolicy(convert=True), config)
        assert stats.conversions == 1
        assert stats.wear.by_cause.get("conversion", 0) == 296


class TestScrubEngine:
    def test_scrub_visits_at_configured_rate(self):
        config = MemoryConfig(total_lines=1 << 14, num_banks=2)
        policy = ScriptedPolicy()
        policy.scrub_interval_s = 1e-2  # sweep in 10 ms (channel duty ~0.74)
        # A long-running core: one read with a huge gap keeps the sim alive.
        trace = _trace([OP_READ, OP_READ], gaps=[0, 2_000_000])
        stats = simulate(trace, policy, config)
        # A 1 ms run covers a tenth of the sweep.
        assert stats.scrub_ops == pytest.approx((1 << 14) / 10, rel=0.1)
        assert stats.scrubs_skipped == 0

    def test_scrub_rewrites_accounted(self):
        config = MemoryConfig(total_lines=1 << 10, num_banks=2)
        policy = ScriptedPolicy(scrub_rewrite=True)
        policy.scrub_interval_s = 1e-3
        trace = _trace([OP_READ, OP_READ], gaps=[0, 400_000])
        stats = simulate(trace, policy, config)
        assert stats.scrub_rewrites == stats.scrub_ops > 0
        assert stats.wear.by_cause.get("scrub", 0) == 296 * stats.scrub_rewrites

    def test_backlog_cap_skips_scrubs(self):
        config = MemoryConfig(
            total_lines=1 << 14, num_banks=2, scrub_backlog_cap=2
        )
        policy = ScriptedPolicy(scrub_rewrite=True)
        policy.scrub_interval_s = 1e-5  # unschedulable sweep
        trace = _trace([OP_READ, OP_READ], gaps=[0, 1_000_000])
        stats = simulate(trace, policy, config)
        assert stats.scrubs_skipped > 0

    def test_scrub_contends_with_demand(self):
        config = MemoryConfig(total_lines=1 << 16, num_banks=2)
        base_trace = _trace([OP_READ] * 20, lines=list(range(20)),
                            gaps=[500] * 20)
        quiet = simulate(base_trace, ScriptedPolicy(), config)
        noisy_policy = ScriptedPolicy(scrub_rewrite=True)
        noisy_policy.scrub_interval_s = 2e-3  # heavy sweep
        noisy = simulate(base_trace, noisy_policy, config)
        assert noisy.execution_time_ns > quiet.execution_time_ns

    def test_no_scrub_when_interval_none(self, config):
        trace = _trace([OP_READ])
        stats = simulate(trace, ScriptedPolicy(), config)
        assert stats.scrub_ops == 0


class TestAccounting:
    def test_instruction_count(self, config):
        trace = _trace([OP_READ, OP_WRITE], gaps=[10, 20])
        stats = simulate(trace, ScriptedPolicy(), config)
        assert stats.instructions == 32

    def test_flush_charges_queued_writes(self, config):
        trace = _trace([OP_WRITE] * 3, lines=[0, 2, 4], gaps=[0, 0, 0])
        stats = simulate(trace, ScriptedPolicy(), config)
        assert stats.wear.by_cause.get("demand", 0) == 3 * 296

    def test_deterministic(self, config, small_profile):
        from repro.core.schemes import PolicyContext, make_policy
        from repro.traces.generator import generate_trace

        trace = generate_trace(small_profile, 50_000, seed=3)
        runs = []
        for _ in range(2):
            policy = make_policy(
                "LWT-4",
                PolicyContext(profile=small_profile, config=config, seed=5),
            )
            runs.append(simulate(trace, policy, config))
        assert runs[0].execution_time_ns == runs[1].execution_time_ns
        assert runs[0].dynamic_energy_pj == runs[1].dynamic_energy_pj
        assert runs[0].reads_by_mode == runs[1].reads_by_mode

    def test_stats_summary_fields(self, config):
        trace = _trace([OP_READ])
        stats = simulate(trace, ScriptedPolicy(), config)
        summary = stats.summary()
        assert summary["scheme"] == "scripted"
        assert summary["exec_ms"] > 0
