"""Tests for the ExecutionService facade (repro.service.execution)."""

import json

import pytest

from repro.experiments import EXPERIMENT_SPECS, EXPERIMENTS, SWEEP_EXPERIMENTS
from repro.experiments.cache import SweepCache
from repro.experiments.planner import run_memo_capacity, run_memo_size
from repro.experiments.runner import (
    clear_sweep_cache,
    configure_sweep_defaults,
    run_sweep,
)
from repro.experiments.spec import SimSpec
from repro.service import ExecutionService, MemoryRunStore, sweep_payload


@pytest.fixture(autouse=True)
def clean_memo():
    clear_sweep_cache()
    yield
    clear_sweep_cache()


SPEC = SimSpec(
    schemes=("Ideal", "Hybrid"), workloads=("gcc",), target_requests=1_000
)
OTHER = SimSpec(
    schemes=("Ideal", "LWT-4"), workloads=("gcc",), target_requests=1_000
)


def _flat(grid):
    return [
        (w, s, stats.to_dict())
        for w, per_scheme in grid.items()
        for s, stats in per_scheme.items()
    ]


class TestSubmit:
    def test_submit_dedupes_across_specs(self):
        service = ExecutionService(cache=False)
        outcome = service.submit([SPEC, OTHER])
        assert outcome.stats.units_total == 4
        assert outcome.stats.units_deduped == 1  # shared (gcc, Ideal)
        assert outcome.stats.units_simulated == 3
        assert set(outcome.results) == {unit.key for unit in outcome.plan.units}

    def test_grid_for_matches_direct_sweep(self):
        service = ExecutionService(cache=False)
        outcome = service.submit([SPEC])
        grid = outcome.grid_for(SPEC)
        clear_sweep_cache()
        assert _flat(grid) == _flat(run_sweep(SPEC, jobs=1))

    def test_resubmit_is_served_from_memo(self):
        service = ExecutionService(cache=False)
        service.submit([SPEC])
        warm = service.submit([SPEC])
        assert warm.stats.units_simulated == 0
        assert warm.stats.units_memo == 2

    def test_explicit_store_backend(self):
        store = MemoryRunStore()
        service = ExecutionService(cache=False, store=store)
        service.submit([SPEC])
        assert len(store) == 2
        clear_sweep_cache()
        warm = service.submit([SPEC])
        assert warm.stats.units_simulated == 0
        assert warm.stats.units_disk == 2

    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ValueError):
            ExecutionService(jobs=0)


class TestSweep:
    def test_sweep_equals_run_sweep_byte_for_byte(self, tmp_path):
        service = ExecutionService(cache=SweepCache(tmp_path))
        via_service = sweep_payload(SPEC, service.sweep(SPEC))
        clear_sweep_cache()
        direct = sweep_payload(
            SPEC, run_sweep(SPEC, jobs=1, cache=SweepCache(tmp_path))
        )
        assert (
            json.dumps(via_service, indent=2, sort_keys=True)
            == json.dumps(direct, indent=2, sort_keys=True)
        )

    def test_sweep_with_custom_store_matches_filesystem_path(self, tmp_path):
        with_store = ExecutionService(cache=False, store=MemoryRunStore())
        grid_store = with_store.sweep(SPEC)
        clear_sweep_cache()
        plain = ExecutionService(cache=False)
        grid_plain = plain.sweep(SPEC)
        assert _flat(grid_store) == _flat(grid_plain)

    def test_cache_property_reflects_configuration(self, tmp_path):
        assert ExecutionService(cache=False).cache is None
        explicit = SweepCache(tmp_path)
        assert ExecutionService(cache=explicit).cache is explicit
        assert ExecutionService(
            cache=str(tmp_path)
        ).cache.cache_dir == explicit.cache_dir


class TestSession:
    def test_session_installs_and_restores_sweep_defaults(self, tmp_path):
        # configure_sweep_defaults() with no arguments reads the current
        # defaults without changing anything.
        previous = configure_sweep_defaults()
        service = ExecutionService(jobs=1, cache=SweepCache(tmp_path))
        with service.session():
            inside = configure_sweep_defaults()
            assert inside[1] is service.cache
        assert configure_sweep_defaults() == previous

    def test_run_experiment_dispatches_known_driver(self, monkeypatch):
        calls = {}

        def fake_driver(**kwargs):
            calls.update(kwargs or {"ran": True})
            return "result"

        monkeypatch.setitem(EXPERIMENTS, "fake-exp", fake_driver)
        service = ExecutionService(cache=False)
        assert service.run_experiment("fake-exp") == "result"
        with pytest.raises(KeyError):
            service.run_experiment("no-such-experiment")


class TestPrewarm:
    def test_prewarm_unions_and_executes_collectors(self, monkeypatch):
        monkeypatch.setitem(EXPERIMENT_SPECS, "fake-a", lambda **kw: [SPEC])
        monkeypatch.setitem(EXPERIMENT_SPECS, "fake-b", lambda **kw: [OTHER])
        service = ExecutionService(cache=False)
        plan = service.prewarm(["fake-a", "fake-b"])
        assert plan is not None
        assert plan.stats.units_deduped == 1
        assert plan.stats.units_simulated == 3
        # The figure drivers' own sweeps now resolve from the memo.
        warm = service.submit([SPEC])
        assert warm.stats.units_simulated == 0

    def test_prewarm_quick_requests_reaches_sweep_collectors(self, monkeypatch):
        seen = {}

        def collector(**kwargs):
            seen.update(kwargs)
            return [SPEC.quick(kwargs.get("target_requests", 1_000))]

        import repro.experiments as experiments_mod

        monkeypatch.setitem(EXPERIMENT_SPECS, "fake-sweep", collector)
        monkeypatch.setattr(
            experiments_mod,
            "SWEEP_EXPERIMENTS",
            SWEEP_EXPERIMENTS + ("fake-sweep",),
        )
        service = ExecutionService(cache=False)
        assert service.prewarm(["fake-sweep"], quick_requests=1_000) is not None
        assert seen == {"target_requests": 1_000}

    def test_prewarm_ignores_unknown_names(self):
        service = ExecutionService(cache=False)
        assert service.prewarm(["not-a-collector"]) is None


class TestMemoPolicy:
    def test_memo_capacity_applies_and_restores_on_close(self):
        before = run_memo_capacity()
        with ExecutionService(cache=False, memo_capacity=3) as service:
            assert run_memo_capacity() == 3
            assert service.memo_size() == run_memo_size()
        assert run_memo_capacity() == before

    def test_close_is_idempotent(self):
        before = run_memo_capacity()
        service = ExecutionService(cache=False, memo_capacity=5)
        service.close()
        service.close()
        assert run_memo_capacity() == before

    def test_clear_memo_drops_entries(self):
        service = ExecutionService(cache=False)
        service.submit([SPEC])
        assert service.memo_size() >= 2
        service.clear_memo()
        assert service.memo_size() == 0

    def test_describe_snapshot(self, tmp_path):
        service = ExecutionService(
            jobs=2, cache=SweepCache(tmp_path), store=MemoryRunStore()
        )
        snapshot = service.describe()
        assert snapshot["jobs"] == 2
        assert snapshot["cache_dir"] == str(tmp_path)
        assert snapshot["store"] == "MemoryRunStore"
        assert isinstance(snapshot["memo_runs"], int)
