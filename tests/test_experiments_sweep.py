"""Integration tests for the sweep figures on a reduced sweep.

One small sweep (few workloads, short traces) is shared by every test in
this module via the runner's memoization, keeping the module fast while
still exercising the full simulation stack.
"""

import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments.figures._sweep import sweep_settings
from repro.experiments.runner import clear_sweep_cache, run_sweep

# A compact but representative slice: the heaviest workload, the cold-read
# outlier, and a light one.
WORKLOADS = ("mcf", "sphinx3", "gcc")
TARGET = 6_000


@pytest.fixture(scope="module", autouse=True)
def warm_sweep():
    settings = sweep_settings(TARGET, workloads=WORKLOADS)
    run_sweep(settings)
    yield
    clear_sweep_cache()


def _run(name):
    return EXPERIMENTS[name](target_requests=TARGET, workloads=WORKLOADS)


class TestFigure9:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments.figures import figure9

        return figure9.run(target_requests=TARGET, workloads=WORKLOADS)

    def _geomean(self, result, scheme):
        return result.rows[-1][result.headers.index(scheme)]

    def test_workload_rows_plus_geomean(self, result):
        assert result.rows[-1][0] == "geomean"
        assert len(result.rows) == len(WORKLOADS) + 1

    def test_all_schemes_slower_than_ideal(self, result):
        for scheme in result.headers[1:]:
            assert self._geomean(result, scheme) >= 1.0

    def test_paper_ordering(self, result):
        scrub = self._geomean(result, "Scrubbing")
        m = self._geomean(result, "M-metric")
        hybrid = self._geomean(result, "Hybrid")
        lwt = self._geomean(result, "LWT-4")
        assert m > hybrid
        assert scrub > hybrid
        assert hybrid < 1.15
        assert lwt < 1.20


class TestFigure10:
    def test_select_saves_energy(self):
        from repro.experiments.figures import figure10

        result = figure10.run(target_requests=TARGET, workloads=WORKLOADS)
        select = result.rows[-1][result.headers.index("Select-4:2")]
        scrub = result.rows[-1][result.headers.index("Scrubbing")]
        assert select < 1.0
        assert scrub > 1.0


class TestFigure11:
    def test_select_beats_tlc_on_edap(self):
        from repro.experiments.figures import figure11

        result = figure11.run(target_requests=TARGET, workloads=WORKLOADS)
        edap = {row[0]: row[3] for row in result.rows}
        assert edap["TLC"] == pytest.approx(1.0)
        assert edap["Select-4:2"] < edap["TLC"]
        assert edap["Select-4:2"] < edap["Scrubbing"]

    def test_area_column_matches_budgets(self):
        from repro.experiments.figures import figure11

        result = figure11.run(target_requests=TARGET, workloads=WORKLOADS)
        cells = {row[0]: row[1] for row in result.rows}
        assert cells["TLC"] == 384
        assert cells["Hybrid"] == 296
        assert cells["LWT-4"] == 302


class TestFigure12:
    def test_k4_at_least_as_good(self):
        from repro.experiments.figures import figure12

        result = figure12.run(target_requests=TARGET, workloads=WORKLOADS)
        k2 = result.rows[-1][result.headers.index("LWT-2")]
        k4 = result.rows[-1][result.headers.index("LWT-4")]
        assert k4 <= k2 + 1e-9

    def test_mcf_shows_largest_gap(self):
        from repro.experiments.figures import figure12

        result = figure12.run(target_requests=TARGET, workloads=WORKLOADS)
        gaps = {
            row[0]: row[1] - row[2]
            for row in result.rows
            if row[0] != "geomean"
        }
        assert gaps["mcf"] == max(gaps.values())


class TestFigure13:
    def test_s2_saves_energy(self):
        from repro.experiments.figures import figure13

        result = figure13.run(target_requests=TARGET, workloads=WORKLOADS)
        s1 = result.rows[-1][result.headers.index("Select-4:1")]
        s2 = result.rows[-1][result.headers.index("Select-4:2")]
        assert s2 <= s1


class TestFigure14:
    def test_conversion_helps_sphinx(self):
        from repro.experiments.figures import figure14

        result = figure14.run(target_requests=TARGET, workloads=WORKLOADS)
        row = result.row_by("workload", "sphinx3")
        noconv = row[result.headers.index("LWT-4-noconv")]
        conv = row[result.headers.index("LWT-4")]
        assert conv < noconv * 0.95  # at least a 5% gain on sphinx


class TestFigure15:
    def test_select_extends_lifetime(self):
        from repro.experiments.figures import figure15

        result = figure15.run(target_requests=TARGET, workloads=WORKLOADS)
        geomean = dict(zip(result.headers[1:], result.rows[-1][1:]))
        assert geomean["Select-4:2"] > 1.1
        assert geomean["Scrubbing"] < 1.0
        assert geomean["M-metric"] == pytest.approx(1.0, abs=0.05)


class TestFigure3And4:
    def test_figure3_goal_matrix(self):
        from repro.experiments.figures import figure3

        result = figure3.run(target_requests=TARGET, workloads=WORKLOADS)
        rows = {row[0]: row for row in result.rows}
        assert rows["TLC"][1] == pytest.approx(0.0, abs=0.02)  # no perf loss
        assert rows["TLC"][2] < 0.8  # density penalty
        assert rows["Scrubbing"][1] > 0.0

    def test_figure4_hybrid_mostly_r_reads(self):
        from repro.experiments.figures import figure4

        result = figure4.run(target_requests=TARGET, workloads=WORKLOADS)
        rows = {row[0]: row for row in result.rows}
        assert rows["M-metric"][2] == pytest.approx(1.0)  # all M
        assert rows["Hybrid"][1] > 0.95  # nearly all R
        assert rows["Scrubbing"][5] > rows["Hybrid"][5]  # scrub volume
