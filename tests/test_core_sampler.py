"""Unit tests for the drift-error sampler used by scheme policies."""

import numpy as np
import pytest

from repro.core.sampler import DriftErrorSampler
from repro.pcm.params import M_METRIC, R_METRIC
from repro.reliability.drift_prob import mean_cell_error_probability


@pytest.fixture
def sampler(rng):
    return DriftErrorSampler(rng=rng)


class TestInterpolation:
    def test_matches_analytic_on_grid(self, sampler):
        for age in (8.0, 640.0, 1e5):
            interp = sampler.cell_error_probability(age, "R")
            exact = float(mean_cell_error_probability(R_METRIC, age))
            assert interp == pytest.approx(exact, rel=0.05)

    def test_m_metric_table(self, sampler):
        interp = sampler.cell_error_probability(640.0, "M")
        exact = float(mean_cell_error_probability(M_METRIC, 640.0))
        assert interp == pytest.approx(exact, rel=0.1)

    def test_clamps_below_grid(self, sampler):
        assert sampler.cell_error_probability(0.001, "R") == pytest.approx(
            sampler.cell_error_probability(1.0, "R")
        )

    def test_clamps_above_grid(self, sampler):
        assert sampler.cell_error_probability(1e12, "R") == pytest.approx(
            sampler.cell_error_probability(1e8, "R")
        )


class TestSampling:
    def test_fresh_lines_have_no_errors(self, sampler):
        assert all(sampler.sample_errors(1.0, "R") == 0 for _ in range(50))

    def test_sample_mean_tracks_expectation(self, rng):
        sampler = DriftErrorSampler(rng=rng)
        age = 640.0
        draws = [sampler.sample_errors(age, "R") for _ in range(3000)]
        assert np.mean(draws) == pytest.approx(
            sampler.expected_errors(age, "R"), rel=0.1
        )

    def test_negligible_fast_path_skips_rng(self, rng):
        sampler = DriftErrorSampler(rng=rng)
        state_before = rng.bit_generator.state["state"]["state"]
        sampler.sample_errors(1.0, "M")
        state_after = rng.bit_generator.state["state"]["state"]
        assert state_before == state_after

    def test_deterministic_given_rng(self):
        a = DriftErrorSampler(rng=np.random.default_rng(9))
        b = DriftErrorSampler(rng=np.random.default_rng(9))
        draws_a = [a.sample_errors(6400.0, "R") for _ in range(20)]
        draws_b = [b.sample_errors(6400.0, "R") for _ in range(20)]
        assert draws_a == draws_b
