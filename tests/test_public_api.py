"""Tests for the top-level public API surface."""

import pytest

import repro
from repro import MemoryConfig, quick_compare


class TestModuleSurface:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_scheme_names_exposed(self):
        assert "Select-4:2" in repro.SCHEME_NAMES

    def test_metric_constants(self):
        assert repro.R_METRIC.name == "R"
        assert repro.M_METRIC.name == "M"


class TestQuickCompare:
    @pytest.fixture(scope="class")
    def results(self):
        return quick_compare("gcc", target_requests=2_000)

    def test_default_scheme_set(self, results):
        assert set(results) == {
            "Ideal",
            "Scrubbing",
            "M-metric",
            "Hybrid",
            "LWT-4",
            "Select-4:2",
        }

    def test_paired_traffic(self, results):
        reads = {stats.reads for stats in results.values()}
        assert len(reads) == 1

    def test_custom_schemes(self):
        results = quick_compare(
            "gcc", schemes=("Ideal", "TLC"), target_requests=1_000
        )
        assert set(results) == {"Ideal", "TLC"}

    def test_custom_config(self):
        config = MemoryConfig(total_lines=1 << 18, num_banks=4)
        results = quick_compare(
            "gcc", schemes=("Ideal",), target_requests=1_000, config=config
        )
        assert results["Ideal"].reads > 0

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            quick_compare("quake3", target_requests=1_000)
