"""Hypothesis property tests: engine invariants over random tiny traces."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim.config import MemoryConfig
from repro.memsim.engine import simulate
from repro.memsim.policy import ReadDecision, ReadMode, WriteDecision
from repro.traces.trace import Trace


class _CountingPolicy:
    """Minimal policy recording every callback for invariant checks."""

    name = "counting"
    scrub_interval_s = None

    def __init__(self):
        self.read_calls = 0
        self.write_calls = 0

    def on_read(self, line, now_s):
        self.read_calls += 1
        return ReadDecision(mode=ReadMode.R)

    def on_write(self, line, now_s):
        self.write_calls += 1
        return WriteDecision(cells_written=296, full_line=True)

    def on_conversion_write(self, line, now_s):
        return WriteDecision(cells_written=296, full_line=True)

    def on_scrub(self, line, now_s):
        raise AssertionError("no scrubbing configured")


request_lists = st.lists(
    st.tuples(
        st.integers(0, 1),      # op
        st.integers(0, 3),      # core
        st.integers(0, 63),     # line
        st.integers(0, 2000),   # gap
    ),
    min_size=1,
    max_size=60,
)


def _build_trace(requests):
    ops, cores, lines, gaps = zip(*requests)
    return Trace(
        op=np.asarray(ops),
        core=np.asarray(cores),
        line=np.asarray(lines),
        gap=np.asarray(gaps),
        name="prop",
    )


class TestEngineInvariants:
    @given(requests=request_lists)
    @settings(max_examples=60, deadline=None)
    def test_every_request_serviced_exactly_once(self, requests):
        trace = _build_trace(requests)
        policy = _CountingPolicy()
        config = MemoryConfig(total_lines=1 << 12, num_banks=4)
        stats = simulate(trace, policy, config)
        reads = sum(1 for r in requests if r[0] == 0)
        writes = len(requests) - reads
        assert stats.reads == reads == policy.read_calls
        assert stats.writes == writes == policy.write_calls

    @given(requests=request_lists)
    @settings(max_examples=40, deadline=None)
    def test_execution_time_bounds(self, requests):
        """Exec time is at least the critical path of any single core and
        at most the fully serialized sum of all work."""
        trace = _build_trace(requests)
        config = MemoryConfig(total_lines=1 << 12, num_banks=4)
        stats = simulate(trace, _CountingPolicy(), config)
        timing = config.timing
        total_gap_ns = sum(r[3] for r in requests) * timing.cycle_ns
        serial_upper = (
            total_gap_ns
            + stats.reads * (timing.r_read_ns + timing.bus_ns)
            + stats.writes * timing.write_ns
            + 1e-6
        )
        assert stats.execution_time_ns <= serial_upper
        # Lower bound: the busiest single core's own gaps.
        per_core_gap = {}
        for op, core, _line, gap in requests:
            per_core_gap[core] = per_core_gap.get(core, 0) + gap
        assert stats.execution_time_ns >= max(per_core_gap.values()) * (
            timing.cycle_ns
        ) - 1e-6

    @given(requests=request_lists)
    @settings(max_examples=40, deadline=None)
    def test_wear_matches_write_count(self, requests):
        trace = _build_trace(requests)
        config = MemoryConfig(total_lines=1 << 12, num_banks=4)
        stats = simulate(trace, _CountingPolicy(), config)
        assert stats.wear.by_cause.get("demand", 0) == stats.writes * 296

    @given(requests=request_lists, banks=st.sampled_from([1, 2, 8]))
    @settings(max_examples=30, deadline=None)
    def test_energy_independent_of_bank_count(self, requests, banks):
        """Dynamic energy depends on work done, not on layout/timing.

        Write cancellation is disabled here: cancelled writes waste
        timing-dependent partial program energy, which is the one
        legitimate layout-dependent energy term.
        """
        trace = _build_trace(requests)
        config = MemoryConfig(
            total_lines=1 << 12, num_banks=banks, cancel_threshold=0.0
        )
        stats = simulate(trace, _CountingPolicy(), config)
        reference = MemoryConfig(
            total_lines=1 << 12, num_banks=4, cancel_threshold=0.0
        )
        ref_stats = simulate(trace, _CountingPolicy(), reference)
        assert stats.dynamic_energy_pj == pytest.approx(
            ref_stats.dynamic_energy_pj
        )
