"""Tests for the shared sweep runner and its memoization."""

import pytest

from repro.experiments.runner import (
    ALL_SCHEMES,
    SweepSettings,
    clear_sweep_cache,
    run_sweep,
)


@pytest.fixture(autouse=True)
def clean_cache():
    clear_sweep_cache()
    yield
    clear_sweep_cache()


SMALL = SweepSettings(
    schemes=("Ideal", "Hybrid"),
    workloads=("gcc",),
    target_requests=1_500,
)


class TestRunSweep:
    def test_grid_shape(self):
        sweep = run_sweep(SMALL)
        assert set(sweep) == {"gcc"}
        assert set(sweep["gcc"]) == {"Ideal", "Hybrid"}

    def test_memoized(self):
        first = run_sweep(SMALL)
        second = run_sweep(SMALL)
        assert first is second

    def test_cache_cleared(self):
        first = run_sweep(SMALL)
        clear_sweep_cache()
        second = run_sweep(SMALL)
        assert first is not second

    def test_different_settings_different_entries(self):
        first = run_sweep(SMALL)
        other = run_sweep(
            SweepSettings(
                schemes=("Ideal", "Hybrid"),
                workloads=("gcc",),
                target_requests=1_500,
                seed=7,
            )
        )
        assert first is not other

    def test_all_workloads_when_unspecified(self):
        settings = SweepSettings(schemes=("Ideal",), target_requests=1_500)
        assert len(settings.effective_workloads()) == 14

    def test_quick_copy(self):
        quick = SMALL.quick(500)
        assert quick.target_requests == 500
        assert quick.schemes == SMALL.schemes

    def test_all_schemes_constant_covers_figures(self):
        for scheme in ("Ideal", "Scrubbing", "M-metric", "TLC", "Hybrid",
                       "LWT-2", "LWT-4", "LWT-4-noconv", "Select-4:1",
                       "Select-4:2"):
            assert scheme in ALL_SCHEMES

    def test_stats_carry_labels(self):
        sweep = run_sweep(SMALL)
        stats = sweep["gcc"]["Hybrid"]
        assert stats.scheme == "Hybrid"
        assert stats.workload == "gcc"
