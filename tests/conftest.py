"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.memsim.config import MemoryConfig
from repro.traces.spec import WorkloadProfile


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic randomness for the test."""
    return np.random.default_rng(1234)


@pytest.fixture
def small_config() -> MemoryConfig:
    """A small memory configuration for fast engine tests."""
    return MemoryConfig(total_lines=1 << 16, num_banks=4)


@pytest.fixture
def small_profile() -> WorkloadProfile:
    """A compact synthetic workload for fast trace/engine tests."""
    return WorkloadProfile(
        name="tiny",
        rpki=4.0,
        wpki=2.0,
        footprint_lines=2048,
        cold_footprint_lines=512,
        cold_read_fraction=0.1,
        hot_age_scale_s=60.0,
    )
