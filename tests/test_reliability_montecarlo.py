"""Monte-Carlo cross-validation of the analytic drift model."""

import pytest

from repro.reliability.montecarlo import (
    relative_error,
    simulate_error_rates,
)


class TestMonteCarloAgreement:
    def test_r_metric_matches_analytic(self):
        points = simulate_error_rates(
            [64.0, 640.0, 6400.0], metric="R", num_lines=1500, seed=3
        )
        for point in points:
            # Expected counts are in the hundreds; 25% agreement is a
            # strong check for a tail statistic.
            assert relative_error(point) < 0.25, point

    def test_m_metric_rarely_errors(self):
        points = simulate_error_rates([640.0], metric="M", num_lines=500, seed=3)
        assert points[0].empirical <= 1e-4

    def test_points_are_monotone_in_age(self):
        points = simulate_error_rates(
            [8.0, 640.0, 64000.0], metric="R", num_lines=800, seed=5
        )
        empirical = [p.empirical for p in points]
        assert empirical == sorted(empirical)

    def test_relative_error_floor(self):
        points = simulate_error_rates([2.0], metric="M", num_lines=10, seed=1)
        # Analytic probability is below resolution; the floor keeps the
        # agreement measure finite.
        assert relative_error(points[0]) <= 1.0
