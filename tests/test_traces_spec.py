"""Unit tests for workload profiles."""

import pytest

from repro.traces.spec import (
    SPEC_WORKLOADS,
    WorkloadProfile,
    instructions_for_requests,
    workload,
    workload_names,
)


class TestRegistry:
    def test_fourteen_workloads(self):
        assert len(SPEC_WORKLOADS) == 14

    def test_paper_names_present(self):
        for name in ("mcf", "sphinx3", "bwaves", "bzip2", "lbm", "gcc"):
            assert name in SPEC_WORKLOADS

    def test_lookup(self):
        assert workload("mcf").name == "mcf"

    def test_unknown_lookup_raises(self):
        with pytest.raises(KeyError):
            workload("doom3")

    def test_names_order_stable(self):
        assert list(workload_names()) == list(SPEC_WORKLOADS)

    def test_mcf_is_most_read_intensive(self):
        rpki = {name: profile.rpki for name, profile in SPEC_WORKLOADS.items()}
        assert max(rpki, key=rpki.get) == "mcf"

    def test_sphinx_is_cold_read_heavy(self):
        assert workload("sphinx3").cold_read_fraction > 0.5
        assert all(
            profile.cold_read_fraction < 0.5
            for name, profile in SPEC_WORKLOADS.items()
            if name != "sphinx3"
        )


class TestProfileValidation:
    def test_rejects_no_memory_traffic(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", rpki=0.0, wpki=0.0)

    def test_rejects_bad_cold_fraction(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", rpki=1.0, wpki=1.0, cold_read_fraction=1.5)

    def test_read_fraction(self):
        profile = WorkloadProfile(name="x", rpki=3.0, wpki=1.0)
        assert profile.read_fraction == pytest.approx(0.75)
        assert profile.mpki == pytest.approx(4.0)

    def test_cold_fallbacks(self):
        profile = WorkloadProfile(name="x", rpki=1.0, wpki=1.0)
        assert profile.effective_cold_reuse == profile.hot_reuse_fraction
        assert profile.effective_cold_tier == profile.hot_tier_fraction

    def test_cold_overrides(self):
        profile = WorkloadProfile(
            name="x", rpki=1.0, wpki=1.0,
            cold_reuse_fraction=0.9, cold_tier_fraction=0.05,
        )
        assert profile.effective_cold_reuse == 0.9
        assert profile.effective_cold_tier == 0.05

    def test_scaled_shrinks_footprints(self):
        profile = workload("mcf").scaled(0.01)
        assert profile.footprint_lines < workload("mcf").footprint_lines
        assert profile.footprint_lines >= 16


class TestInstructionSizing:
    def test_inverse_in_mpki(self):
        light = workload("gcc")
        heavy = workload("mcf")
        n_light = instructions_for_requests(light, 10_000)
        n_heavy = instructions_for_requests(heavy, 10_000)
        assert n_light > n_heavy

    def test_rejects_nonpositive_target(self):
        with pytest.raises(ValueError):
            instructions_for_requests(workload("gcc"), 0)

    def test_expected_request_count(self):
        profile = workload("lbm")
        instr = instructions_for_requests(profile, 20_000, num_cores=4)
        expected = instr * 4 * profile.mpki / 1000
        assert expected == pytest.approx(20_000, rel=0.05)
