"""Unit + property tests for the LWT flag automaton and tracker."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lwt import LwtLineFlags, QuantizedTracker, lwt_flag_bits


class TestFlagBits:
    def test_k4_needs_six_bits(self):
        assert lwt_flag_bits(4) == 6  # 4 vector + 2 index

    def test_k2_needs_three_bits(self):
        assert lwt_flag_bits(2) == 3

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            lwt_flag_bits(3)


class TestPaperFigure5Walkthrough:
    """The exact sequence of the paper's Figure 5."""

    def test_write_sets_bit_and_index(self):
        flags = LwtLineFlags(k=4)
        flags.on_write(2)
        assert flags.vector == 0b0100
        assert flags.ind == 2

    def test_scrub1_clears_bits_before_last_write(self):
        flags = LwtLineFlags(k=4, vector=0b0111, ind=2)
        flags.on_scrub(rewrote=False)
        # Bits 0 and 1 retired; bit 2 survives; new cycle starts.
        assert flags.vector == 0b0100
        assert flags.ind == 0

    def test_read_r1_switches_to_m_sensing(self):
        # After scrub1 the vector is 0b0100 with ind = 0; a read in
        # sub-interval 2 discards bits [1, 2] and finds nothing left.
        flags = LwtLineFlags(k=4, vector=0b0100, ind=0)
        assert not flags.tracked_for_read(2)

    def test_read_before_expiry_uses_r_sensing(self):
        flags = LwtLineFlags(k=4, vector=0b0100, ind=0)
        assert flags.tracked_for_read(1)

    def test_scrub_with_ind_zero_clears_all(self):
        flags = LwtLineFlags(k=4, vector=0b0100, ind=0)
        flags.on_scrub(rewrote=False)
        assert flags.vector == 0

    def test_scrub_rewrite_sets_bit_zero(self):
        flags = LwtLineFlags(k=4, vector=0, ind=0)
        flags.on_scrub(rewrote=True)
        assert flags.vector == 0b0001
        assert flags.tracked_for_read(3)  # rewrite certifies the cycle


class TestFlagAutomaton:
    def test_empty_vector_forces_m(self):
        flags = LwtLineFlags(k=4)
        for s in range(4):
            assert not flags.tracked_for_read(s)

    def test_write_this_cycle_always_tracks(self):
        flags = LwtLineFlags(k=4)
        flags.on_scrub(rewrote=False)
        flags.on_write(1)
        for s in range(1, 4):
            assert flags.tracked_for_read(s)

    def test_write_clears_stale_intermediate_bits(self):
        flags = LwtLineFlags(k=4, vector=0b0110, ind=1)
        flags.on_write(3)  # bits in [2, 3) are stale leftovers
        assert flags.vector & 0b0100 == 0
        assert flags.vector & 0b1000
        assert flags.ind == 3

    def test_sub_interval_clamped(self):
        flags = LwtLineFlags(k=4)
        flags.on_write(99)  # clamps to k-1
        assert flags.ind == 3

    def test_rejects_negative_sub_interval(self):
        flags = LwtLineFlags(k=4)
        with pytest.raises(ValueError):
            flags.on_write(-1)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            LwtLineFlags(k=3)

    @given(
        events=st.lists(
            st.tuples(st.sampled_from(["write", "scrub", "scrub_rw"]),
                      st.integers(0, 3)),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_invariants_property(self, events):
        """The automaton never leaves its representable state space."""
        flags = LwtLineFlags(k=4)
        for kind, s in events:
            if kind == "write":
                flags.on_write(s)
            else:
                flags.on_scrub(rewrote=kind == "scrub_rw")
            assert 0 <= flags.vector < 16
            assert 0 <= flags.ind < 4
            # The index-flag's bit is set whenever it points at a write.
            if flags.ind != 0:
                assert flags.vector & (1 << flags.ind)


class TestQuantizedTracker:
    def test_tracked_within_window(self):
        tracker = QuantizedTracker(k=4, scrub_interval_s=640.0)
        tracker.record_event(7, 1000.0)
        assert tracker.is_tracked(7, 1000.0 + 300.0, default_last_s=0.0)

    def test_untracked_beyond_window(self):
        tracker = QuantizedTracker(k=4, scrub_interval_s=640.0)
        tracker.record_event(7, 1000.0)
        assert not tracker.is_tracked(7, 1000.0 + 2000.0, default_last_s=0.0)

    def test_default_used_for_unknown_lines(self):
        tracker = QuantizedTracker(k=4, scrub_interval_s=640.0)
        assert tracker.is_tracked(3, 100.0, default_last_s=90.0)
        assert not tracker.is_tracked(3, 100_000.0, default_last_s=0.0)

    def test_conservative_quantization(self):
        # A write at the very start of a sub-interval read k sub-intervals
        # later is out of the flag window even though its true age can be
        # just under S.
        tracker = QuantizedTracker(k=4, scrub_interval_s=640.0)
        sub = tracker.sub_len_s
        tracker.record_event(1, 0.0)
        assert not tracker.is_tracked(1, 4 * sub, default_last_s=0.0)
        assert tracker.is_tracked(1, 4 * sub - 1e-6, default_last_s=0.0)

    def test_never_allows_age_beyond_interval(self):
        tracker = QuantizedTracker(k=4, scrub_interval_s=640.0)
        for offset in (0.0, 10.0, 159.0, 320.0, 639.9):
            tracker.record_event(0, 1000.0 + offset)
            for age in (650.0, 1000.0, 10_000.0):
                assert not tracker.is_tracked(
                    0, 1000.0 + offset + age, default_last_s=0.0
                )

    def test_len_counts_tracked_lines(self):
        tracker = QuantizedTracker(k=2, scrub_interval_s=640.0)
        tracker.record_event(1, 0.0)
        tracker.record_event(2, 0.0)
        assert len(tracker) == 2

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            QuantizedTracker(k=5, scrub_interval_s=640.0)
        with pytest.raises(ValueError):
            QuantizedTracker(k=4, scrub_interval_s=0.0)
