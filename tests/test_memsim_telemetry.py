"""Engine telemetry: tracing, histograms, and statistics invariants.

The contract under test: telemetry observes, never perturbs. A run with
tracing + metrics enabled must produce statistics equal (dataclass
equality, which excludes the histograms) to an uninstrumented run, while
filling the histograms and emitting a coherent event stream.
"""

import json

import pytest

from repro.core.schemes import PolicyContext, make_policy
from repro.experiments.runner import SweepSettings, clear_sweep_cache, run_sweep
from repro.memsim.config import MemoryConfig
from repro.memsim.engine import simulate
from repro.obs import MetricsRegistry, Telemetry, Tracer, chrome_trace_events
from repro.traces.generator import generate_trace
from repro.traces.spec import instructions_for_requests, workload


def _run(scheme="Hybrid", workload_name="mcf", requests=3_000, telemetry=None):
    config = MemoryConfig()
    profile = workload(workload_name)
    instructions = instructions_for_requests(profile, requests, config.num_cores)
    trace = generate_trace(
        profile,
        instructions_per_core=instructions,
        num_cores=config.num_cores,
        seed=42,
    )
    policy = make_policy(
        scheme, PolicyContext(profile=profile, config=config, seed=42)
    )
    return simulate(trace, policy, config, telemetry=telemetry)


@pytest.fixture(scope="module")
def traced_run():
    tele = Telemetry(tracer=Tracer(), metrics=MetricsRegistry())
    stats = _run(telemetry=tele)
    return stats, tele


class TestTelemetryNeutrality:
    def test_stats_identical_with_and_without_telemetry(self, traced_run):
        traced_stats, _ = traced_run
        assert _run(telemetry=None) == traced_stats

    def test_disabled_run_leaves_histograms_empty(self):
        stats = _run(requests=800, telemetry=None)
        assert stats.read_latency_hist.count == 0
        assert stats.queue_depth_hist.count == 0

    def test_null_telemetry_behaves_like_none(self):
        stats = _run(requests=800, telemetry=Telemetry())
        assert stats.read_latency_hist.count == 0

    def test_histograms_stay_out_of_serialized_form(self, traced_run):
        stats, _ = traced_run
        payload = stats.to_dict()
        assert "read_latency_hist" not in payload
        assert "queue_depth_hist" not in payload
        json.dumps(payload)  # still JSON-clean


class TestHistograms:
    def test_latency_histogram_matches_read_totals(self, traced_run):
        stats, _ = traced_run
        hist = stats.read_latency_hist
        assert hist.count == stats.reads > 0
        assert hist.sum == pytest.approx(stats.total_read_latency_ns)
        assert stats.queue_depth_hist.count == stats.reads

    def test_percentiles_bracket_sensing_latencies(self, traced_run):
        stats, _ = traced_run
        # Every read takes at least one R-sense (150 ns) plus the bus.
        assert stats.read_latency_hist.percentile(50) >= 150.0


class TestTraceStream:
    def test_read_events_cover_every_demand_read(self, traced_run):
        stats, tele = traced_run
        reads = [r for r in tele.tracer.records if r["kind"] == "read"]
        assert len(reads) == stats.reads
        sample = reads[0]
        assert sample["issue_ns"] <= sample["start_ns"] <= sample["complete_ns"]
        assert 0 <= sample["bank"] < MemoryConfig().num_banks
        assert sample["mode"] in ("R", "M", "RM")
        assert sample["queue_depth"] >= 0

    def test_cancel_and_scrub_events_match_stats(self, traced_run):
        stats, tele = traced_run
        records = tele.tracer.records
        cancels = [r for r in records if r["kind"] == "write_cancel"]
        scrubs = [r for r in records if r["kind"] == "scrub"]
        assert stats.cancelled_writes > 0  # mcf/Hybrid exercises cancellation
        assert len(cancels) == stats.cancelled_writes
        assert scrubs and all(s["lines"] > 0 for s in scrubs)

    def test_write_events_present_for_demand_writes(self, traced_run):
        stats, tele = traced_run
        writes = [r for r in tele.tracer.records if r["kind"] == "write"]
        assert writes
        assert all(w["start_ns"] <= w["complete_ns"] for w in writes)
        assert {w["cause"] for w in writes} <= {"demand", "conversion"}

    def test_chrome_export_is_loadable(self, traced_run, tmp_path):
        _, tele = traced_run
        path = tmp_path / "trace.json"
        tele.tracer.write_chrome(path)
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert {e.get("cat") for e in events} >= {"read", "scrub"}
        assert all("ts" in e for e in events if e["ph"] != "M")

    def test_metrics_snapshot_mirrors_stats(self, traced_run):
        stats, tele = traced_run
        dump = tele.metrics.to_dict()
        assert dump["counters"]["sim.reads"] == stats.reads
        assert dump["counters"]["sim.cancelled_writes"] == stats.cancelled_writes
        assert dump["counters"]["sim.scrub.ops"] == stats.scrub_ops
        hist = dump["histograms"]["sim.read_latency_ns"]
        assert sum(hist["counts"]) == stats.reads


class TestRunStatsInvariants:
    """Accounting identities that must hold for every scheme."""

    @pytest.fixture(scope="class")
    def small_grid(self):
        clear_sweep_cache()
        settings = SweepSettings(
            schemes=(
                "Ideal", "Scrubbing", "M-metric", "Hybrid",
                "LWT-4", "LWT-4-noconv", "Select-4:2", "TLC",
            ),
            workloads=("gcc", "mcf"),
            target_requests=1_500,
        )
        grid = run_sweep(settings, jobs=1)
        clear_sweep_cache()
        return grid

    def test_reads_by_mode_sums_to_reads(self, small_grid):
        for per_scheme in small_grid.values():
            for scheme, stats in per_scheme.items():
                assert sum(stats.reads_by_mode.values()) == stats.reads, scheme

    def test_scrub_rewrites_bounded_by_scrub_ops(self, small_grid):
        for per_scheme in small_grid.values():
            for scheme, stats in per_scheme.items():
                assert stats.scrub_rewrites <= stats.scrub_ops, scheme

    def test_latency_and_counts_nonnegative(self, small_grid):
        for per_scheme in small_grid.values():
            for stats in per_scheme.values():
                assert stats.total_read_latency_ns >= 0
                assert stats.conversions >= 0
                assert stats.cancelled_writes >= 0
