"""Unit tests for the dynamic-energy account."""

import pytest

from repro.pcm.energy import EnergyAccount
from repro.pcm.params import EnergyParams


@pytest.fixture
def account():
    return EnergyAccount(params=EnergyParams(), data_bits=512)


class TestEnergyAccount:
    def test_read_categories(self, account):
        account.add_read("R")
        account.add_read("M", category="scrub_read")
        assert set(account.by_category) == {"read", "scrub_read"}

    def test_rm_read_costs_sum(self, account):
        rm = account.add_read("RM")
        fresh = EnergyAccount(params=account.params)
        r = fresh.add_read("R")
        m = fresh.add_read("M")
        assert rm == pytest.approx(r + m)

    def test_write_scales_with_cells(self, account):
        full = account.add_write(296)
        diff = account.add_write(74)
        assert full == pytest.approx(4 * diff)

    def test_flag_access(self, account):
        read_only = account.add_flag_access(writes=False)
        with_update = account.add_flag_access(writes=True)
        assert with_update > read_only

    def test_total(self, account):
        account.add_read("R")
        account.add_write(296)
        assert account.total_pj == pytest.approx(
            sum(account.by_category.values())
        )

    def test_background_scales_with_time_and_lines(self, account):
        short = account.background_pj(1e6, 1000)
        double_time = account.background_pj(2e6, 1000)
        double_lines = account.background_pj(1e6, 2000)
        assert double_time == pytest.approx(2 * short)
        assert double_lines == pytest.approx(2 * short)

    def test_merged_with(self, account):
        other = EnergyAccount(params=account.params)
        account.add_read("R")
        other.add_read("R")
        other.add_write(10)
        merged = account.merged_with(other)
        assert merged.by_category["read"] == pytest.approx(
            2 * account.by_category["read"]
        )
        assert "write" in merged.by_category
