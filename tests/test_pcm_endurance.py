"""Unit tests for wear accounting and lifetime math."""

import pytest

from repro.pcm.endurance import CELL_ENDURANCE_WRITES, WearAccount, lifetime_years


class TestWearAccount:
    def test_full_line_charges_cells(self):
        account = WearAccount(cells_per_line=296)
        assert account.add_full_line("demand") == 296
        assert account.total_cells == 296

    def test_multiple_causes_tracked(self):
        account = WearAccount(cells_per_line=100)
        account.add_full_line("demand", lines=2)
        account.add_cells("scrub", 50)
        assert account.by_cause == {"demand": 200, "scrub": 50}
        assert account.total_cells == 250

    def test_negative_cells_rejected(self):
        with pytest.raises(ValueError):
            WearAccount().add_cells("demand", -1)

    def test_lifetime_ratio(self):
        baseline = WearAccount()
        baseline.add_cells("demand", 1000)
        other = WearAccount()
        other.add_cells("demand", 2000)
        assert other.lifetime_ratio(baseline) == pytest.approx(0.5)

    def test_lifetime_ratio_infinite_for_no_writes(self):
        baseline = WearAccount()
        baseline.add_cells("demand", 10)
        assert WearAccount().lifetime_ratio(baseline) == float("inf")

    def test_lifetime_ratio_rejects_empty_baseline(self):
        account = WearAccount()
        account.add_cells("demand", 1)
        with pytest.raises(ValueError):
            account.lifetime_ratio(WearAccount())


class TestLifetimeYears:
    def test_infinite_without_writes(self):
        assert lifetime_years(0.0, 1e9) == float("inf")

    def test_scales_inverse_with_rate(self):
        one = lifetime_years(1e6, 1e9)
        two = lifetime_years(2e6, 1e9)
        assert one == pytest.approx(2 * two)

    def test_magnitude_reasonable(self):
        # 2^25 lines x 296 cells at 1M cell-writes/s: far beyond a decade.
        years = lifetime_years(1e6, (1 << 25) * 296, CELL_ENDURANCE_WRITES)
        assert years > 10
