"""Unit tests for the vectorized MLC cell array."""

import numpy as np
import pytest

from repro.pcm.array import CellArray
from repro.pcm.params import M_METRIC, R_METRIC


@pytest.fixture
def array(rng):
    return CellArray(num_lines=16, cells_per_line=64, rng=rng, start_time_s=0.0)


class TestConstruction:
    def test_rejects_bad_dimensions(self, rng):
        with pytest.raises(ValueError):
            CellArray(num_lines=0, rng=rng)

    def test_respects_initial_levels(self, rng):
        levels = np.full((4, 8), 2)
        array = CellArray(4, 8, rng=rng, initial_levels=levels)
        assert (array.levels == 2).all()

    def test_rejects_wrong_initial_shape(self, rng):
        with pytest.raises(ValueError):
            CellArray(4, 8, rng=rng, initial_levels=np.zeros((2, 8), dtype=int))

    def test_initial_write_counts_are_one(self, array):
        assert (array.write_count == 1).all()


class TestReads:
    def test_fresh_read_is_correct(self, array):
        for line in range(array.num_lines):
            result = array.read_line(line, 0.0, "R")
            assert result.correct
            assert (result.sensed_levels == array.levels[line]).all()

    def test_m_read_fresh_is_correct(self, array):
        result = array.read_line(0, 0.0, "M")
        assert result.correct

    def test_unknown_metric_rejected(self, array):
        with pytest.raises(ValueError):
            array.read_line(0, 0.0, "Q")

    def test_errors_grow_with_age(self, rng):
        array = CellArray(200, 256, rng=rng, start_time_s=0.0)
        early = int(array.count_drift_errors(8.0, "R").sum())
        late = int(array.count_drift_errors(6400.0, "R").sum())
        assert late > early

    def test_m_metric_more_drift_tolerant(self, rng):
        array = CellArray(200, 256, rng=rng, start_time_s=0.0)
        at = 100_000.0
        errors_r = int(array.count_drift_errors(at, "R").sum())
        errors_m = int(array.count_drift_errors(at, "M").sum())
        assert errors_m < errors_r


class TestWrites:
    def test_full_write_returns_cell_count(self, array):
        levels = np.full(64, 1)
        assert array.write_line(0, levels, 10.0) == 64
        assert (array.levels[0] == 1).all()
        assert (array.write_time[0] == 10.0).all()

    def test_full_write_increments_counts(self, array):
        array.write_line(0, np.full(64, 1), 10.0)
        assert (array.write_count[0] == 2).all()

    def test_differential_write_touches_changed_cells_only(self, array):
        before = array.levels[3].copy()
        target = before.copy()
        target[:10] = (target[:10] + 1) % 4
        written = array.write_line_differential(3, target, 5.0)
        assert written == int((target != before).sum())
        untouched = array.write_time[3][10:]
        assert (untouched == 0.0).all()

    def test_differential_write_noop_when_same(self, array):
        target = array.levels[2].copy()
        assert array.write_line_differential(2, target, 5.0) == 0

    def test_rewrite_in_place_resets_drift(self, rng):
        levels = np.full((1, 256), 2)
        array = CellArray(1, 256, rng=rng, initial_levels=levels, start_time_s=0.0)
        t = 640.0
        array.rewrite_line_in_place(0, t)
        # Immediately after the refresh the line senses clean.
        assert array.read_line(0, t, "R").correct

    def test_rewrite_cells_in_place_partial(self, array):
        mask = np.zeros(64, dtype=bool)
        mask[:5] = True
        assert array.rewrite_cells_in_place(0, mask, 7.0) == 5
        assert (array.write_time[0][:5] == 7.0).all()
        assert (array.write_time[0][5:] == 0.0).all()

    def test_rejects_bad_level_values(self, array):
        with pytest.raises(ValueError):
            array.write_line(0, np.full(64, 5), 1.0)

    def test_rejects_wrong_length(self, array):
        with pytest.raises(ValueError):
            array.write_line(0, np.full(32, 1), 1.0)


class TestAccounting:
    def test_total_cell_writes(self, array):
        base = array.total_cell_writes()
        array.write_line(0, np.full(64, 1), 1.0)
        assert array.total_cell_writes() == base + 64

    def test_line_age_uses_oldest_cell(self, array):
        target = array.levels[1].copy()
        target[0] = (target[0] + 1) % 4
        array.write_line_differential(1, target, 50.0)
        # Only one cell refreshed; the line age is still from t=0.
        assert array.line_age_s(1, 60.0) == pytest.approx(60.0)
        array.write_line(1, target, 50.0)
        assert array.line_age_s(1, 60.0) == pytest.approx(10.0)

    def test_max_cell_writes(self, array):
        for _ in range(3):
            array.write_line(0, array.levels[0].copy(), 1.0)
        assert array.max_cell_writes() == 4


class TestCorrelatedDrift:
    def test_alpha_m_tracks_alpha_r(self, rng):
        array = CellArray(50, 256, rng=rng)
        # Within one level the exponents must be strongly correlated.
        mask = array.levels == 2
        corr = np.corrcoef(array.alpha_r[mask], array.alpha_m[mask])[0, 1]
        assert corr > 0.9

    def test_alpha_m_mean_matches_table2(self, rng):
        array = CellArray(100, 256, rng=rng)
        for level in range(3):
            mask = array.levels == level
            expected = M_METRIC.mu_alpha[level]
            assert array.alpha_m[mask].mean() == pytest.approx(expected, rel=0.1)

    def test_independent_mode_uncorrelated(self, rng):
        array = CellArray(50, 256, rng=rng, correlated_drift=False)
        mask = array.levels == 2
        corr = np.corrcoef(array.alpha_r[mask], array.alpha_m[mask])[0, 1]
        assert abs(corr) < 0.1

    def test_rewrite_redraws_correlated(self, rng):
        array = CellArray(4, 64, rng=rng)
        array.write_line(0, np.full(64, 2), 1.0)
        ratio = array.alpha_m[0] / np.maximum(array.alpha_r[0], 1e-12)
        expected = M_METRIC.mu_alpha[2] / R_METRIC.mu_alpha[2]
        assert np.median(ratio) == pytest.approx(expected, rel=0.15)
