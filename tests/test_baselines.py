"""Unit tests for the TLC baseline policy."""

import pytest

from repro.baselines.tlc import TlcPolicy
from repro.core.schemes import PolicyContext
from repro.memsim.config import DEFAULT_EPOCH_S
from repro.memsim.policy import ReadMode
from repro.pcm.area import tlc_line_budget


@pytest.fixture
def tlc(small_profile, small_config):
    return TlcPolicy(PolicyContext(profile=small_profile, config=small_config))


class TestTlcPolicy:
    def test_no_scrubbing(self, tlc):
        assert tlc.scrub_interval_s is None

    def test_reads_fast_and_clean(self, tlc):
        decision = tlc.on_read(1, DEFAULT_EPOCH_S + 1.0)
        assert decision.mode is ReadMode.R
        assert decision.errors_seen == 0
        assert not decision.silent_corruption

    def test_write_charges_tri_level_cells(self, tlc):
        decision = tlc.on_write(1, DEFAULT_EPOCH_S + 1.0)
        assert decision.full_line
        # 384 tri-level cells at the configured write efficiency.
        assert decision.cells_written == round(
            tlc_line_budget().total_cells * 0.75
        )

    def test_write_efficiency_validated(self, small_profile, small_config):
        ctx = PolicyContext(profile=small_profile, config=small_config)
        with pytest.raises(ValueError):
            TlcPolicy(ctx, write_efficiency=0.0)
        with pytest.raises(ValueError):
            TlcPolicy(ctx, write_efficiency=1.5)

    def test_denser_write_efficiency_changes_cells(
        self, small_profile, small_config
    ):
        ctx = PolicyContext(profile=small_profile, config=small_config)
        full = TlcPolicy(ctx, write_efficiency=1.0)
        assert full.on_write(0, DEFAULT_EPOCH_S).cells_written == 384
