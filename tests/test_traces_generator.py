"""Unit tests for synthetic trace generation."""

import numpy as np
import pytest

from repro.traces.generator import generate_trace, is_cold_line
from repro.traces.spec import WorkloadProfile
from repro.traces.trace import OP_READ, OP_WRITE


class TestGeneration:
    def test_deterministic_with_seed(self, small_profile):
        a = generate_trace(small_profile, 100_000, seed=7)
        b = generate_trace(small_profile, 100_000, seed=7)
        assert (a.line == b.line).all()
        assert (a.op == b.op).all()

    def test_different_seeds_differ(self, small_profile):
        a = generate_trace(small_profile, 100_000, seed=7)
        b = generate_trace(small_profile, 100_000, seed=8)
        assert len(a) != len(b) or not (a.line == b.line).all()

    def test_measured_rpki_close_to_profile(self, small_profile):
        trace = generate_trace(small_profile, 400_000, seed=1)
        stats = trace.stats()
        assert stats.rpki == pytest.approx(small_profile.rpki, rel=0.1)
        assert stats.wpki == pytest.approx(small_profile.wpki, rel=0.15)

    def test_instruction_budget_respected(self, small_profile):
        trace = generate_trace(small_profile, 50_000, num_cores=2, seed=3)
        for core, idx in trace.per_core_indices().items():
            consumed = int(trace.gap[idx].sum()) + len(idx)
            assert consumed <= 50_000

    def test_all_cores_present(self, small_profile):
        trace = generate_trace(small_profile, 100_000, num_cores=4, seed=3)
        assert trace.num_cores() == 4

    def test_writes_stay_in_hot_footprint(self, small_profile):
        trace = generate_trace(small_profile, 300_000, seed=5)
        writes = trace.line[trace.op == OP_WRITE]
        assert writes.max() < small_profile.footprint_lines

    def test_cold_reads_present(self, small_profile):
        trace = generate_trace(small_profile, 300_000, seed=5)
        reads = trace.line[trace.op == OP_READ]
        cold = reads >= small_profile.footprint_lines
        fraction = float(cold.mean())
        assert fraction == pytest.approx(
            small_profile.cold_read_fraction, abs=0.03
        )

    def test_no_cold_region_disables_cold_reads(self):
        profile = WorkloadProfile(
            name="x",
            rpki=4.0,
            wpki=1.0,
            footprint_lines=1024,
            cold_footprint_lines=0,
            cold_read_fraction=0.5,
        )
        trace = generate_trace(profile, 200_000, seed=2)
        assert trace.line.max() < 1024

    def test_hot_tier_concentration(self, small_profile):
        trace = generate_trace(small_profile, 400_000, seed=9)
        hot_reads = trace.line[
            (trace.op == OP_READ) & (trace.line < small_profile.footprint_lines)
        ]
        tier = int(small_profile.footprint_lines * small_profile.hot_tier_fraction)
        in_tier = float((hot_reads < tier).mean())
        assert in_tier > 0.7  # 80% reuse plus uniform spill-over

    def test_rejects_bad_args(self, small_profile):
        with pytest.raises(ValueError):
            generate_trace(small_profile, 0)
        with pytest.raises(ValueError):
            generate_trace(small_profile, 1000, num_cores=0)


class TestColdClassification:
    def test_is_cold_line(self, small_profile):
        assert not is_cold_line(small_profile, 0)
        assert is_cold_line(small_profile, small_profile.footprint_lines)
