"""Unit tests for the Table V multi-interval scrub analysis."""

import pytest

from repro.pcm.params import M_METRIC, R_METRIC
from repro.reliability.scrub_analysis import (
    ScrubSetting,
    bch_detection_limit,
    relaxed_scrub_risk,
    silent_corruption_risk,
    table5,
)
from repro.reliability.targets import DRAM_TARGET


class TestDetectionLimit:
    def test_bch8_detects_17(self):
        assert bch_detection_limit(8) == 17

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            bch_detection_limit(-1)


class TestRelaxedScrubRisk:
    def test_paper_conclusion_r_bch8_fails(self):
        risk = relaxed_scrub_risk(R_METRIC, 8, 8.0, w=1)
        assert risk > DRAM_TARGET.budget_for_interval(8.0)

    def test_paper_conclusion_r_bch10_passes(self):
        risk = relaxed_scrub_risk(R_METRIC, 10, 8.0, w=1)
        assert risk < DRAM_TARGET.budget_for_interval(8.0)

    def test_paper_conclusion_m_bch8_passes(self):
        risk = relaxed_scrub_risk(M_METRIC, 8, 640.0, w=1)
        assert risk < DRAM_TARGET.budget_for_interval(640.0)

    def test_condition_iii_no_worse_than_ii_here(self):
        ii = relaxed_scrub_risk(R_METRIC, 8, 8.0, w=1, skipped_intervals=1)
        iii = relaxed_scrub_risk(R_METRIC, 8, 8.0, w=1, skipped_intervals=2)
        # Drift decelerates in log-time, so the later window adds fewer
        # fresh errors.
        assert iii < ii

    def test_stronger_ecc_reduces_risk(self):
        weak = relaxed_scrub_risk(R_METRIC, 8, 8.0, w=1)
        strong = relaxed_scrub_risk(R_METRIC, 9, 8.0, w=1)
        assert strong < weak

    def test_w2_riskier_than_w1(self):
        w1 = relaxed_scrub_risk(R_METRIC, 8, 8.0, w=1)
        w2 = relaxed_scrub_risk(R_METRIC, 8, 8.0, w=2)
        assert w2 > w1

    def test_rejects_w_zero(self):
        with pytest.raises(ValueError):
            relaxed_scrub_risk(R_METRIC, 8, 8.0, w=0)

    def test_rejects_bad_skip(self):
        with pytest.raises(ValueError):
            relaxed_scrub_risk(R_METRIC, 8, 8.0, w=1, skipped_intervals=0)


class TestSilentCorruption:
    def test_grows_with_age(self):
        young = silent_corruption_risk(R_METRIC, 8, 64.0)
        old = silent_corruption_risk(R_METRIC, 8, 6400.0)
        assert old > young

    def test_hybrid_window_near_budget(self):
        # The ReadDuo-Hybrid design point: >17 errors within one 640 s
        # interval stays in the neighbourhood of the DRAM budget (the
        # paper lands just under; our model lands within ~2x).
        risk = silent_corruption_risk(R_METRIC, 8, 640.0)
        budget = DRAM_TARGET.budget_for_interval(640.0)
        assert risk < 2.0 * budget


class TestTable5:
    def test_three_paper_rows(self):
        rows = table5(
            [
                ScrubSetting(R_METRIC, 8, 8.0, 1),
                ScrubSetting(R_METRIC, 10, 8.0, 1),
                ScrubSetting(M_METRIC, 8, 640.0, 1),
            ]
        )
        assert [row.meets for row in rows] == [False, True, True]

    def test_labels(self):
        row = table5([ScrubSetting(R_METRIC, 8, 8.0, 1)])[0]
        assert row.label == "R(BCH=8,S=8,W=1)"
