"""Unit tests for the steady-state initial-age model."""

import numpy as np
import pytest

from repro.core.agemodel import InitialAgeModel


class TestInitialAges:
    def test_deterministic(self, small_profile):
        model = InitialAgeModel(small_profile, seed=5)
        assert model.age_of(100) == model.age_of(100)

    def test_different_lines_differ(self, small_profile):
        model = InitialAgeModel(small_profile, seed=5)
        ages = {model.age_of(line) for line in range(50)}
        assert len(ages) > 45

    def test_seed_changes_ages(self, small_profile):
        a = InitialAgeModel(small_profile, seed=1)
        b = InitialAgeModel(small_profile, seed=2)
        assert a.age_of(10) != b.age_of(10)

    def test_cold_lines_get_cold_age(self, small_profile):
        model = InitialAgeModel(small_profile, seed=5)
        assert model.age_of(small_profile.footprint_lines) == pytest.approx(
            small_profile.cold_age_s
        )

    def test_hot_ages_exponential_mean(self, small_profile):
        model = InitialAgeModel(small_profile, seed=5)
        ages = np.asarray([model.age_of(line) for line in range(2000)])
        assert ages.mean() == pytest.approx(
            small_profile.hot_age_scale_s, rel=0.1
        )

    def test_min_age_floor(self, small_profile):
        model = InitialAgeModel(small_profile, seed=5, min_age_s=3.0)
        assert min(model.age_of(line) for line in range(500)) >= 3.0
