"""Tests for the scheme registry (repro.core.registry)."""

import pytest

from repro.core import policies  # noqa: F401  (registers the built-ins)
from repro.core.registry import (
    canonical_scheme_name,
    enumerate_family,
    family_syntaxes,
    is_scheme_name,
    make_policy,
    register_scheme,
    resolve_scheme,
    scheme_catalog,
    scheme_names,
    unknown_scheme_message,
    unregister_scheme,
)
from repro.core.policies import IdealPolicy, PolicyContext
from repro.core.schemes import SCHEME_NAMES
from repro.traces.spec import workload


@pytest.fixture
def ctx():
    return PolicyContext(profile=workload("gcc"))


class TestBuiltinRegistrations:
    def test_scheme_names_matches_legacy_tuple(self):
        assert scheme_names() == (
            "Ideal", "Scrubbing", "Scrubbing-W0", "M-metric", "Hybrid",
            "LWT-2", "LWT-4", "LWT-4-noconv", "Select-4:1", "Select-4:2",
            "TLC",
        )
        assert SCHEME_NAMES == scheme_names()

    def test_family_syntaxes(self):
        assert family_syntaxes() == ("LWT-<k>[-noconv]", "Select-<k>:<s>")

    @pytest.mark.parametrize("name", scheme_names())
    def test_every_listed_name_round_trips(self, name, ctx):
        # canonical(canonical(x)) == canonical(x) == x for listed names,
        # and make_policy produces a policy reporting that exact name.
        assert canonical_scheme_name(name) == name
        assert is_scheme_name(name)
        policy = make_policy(name, ctx)
        assert policy.name == name

    @pytest.mark.parametrize("name", scheme_names())
    def test_alias_to_canonical_to_alias_is_stable(self, name):
        for alias in (name.lower(), name.upper(), f"readduo-{name.lower()}"):
            resolved = canonical_scheme_name(alias)
            assert resolved == name
            # A second pass is a fixed point.
            assert canonical_scheme_name(resolved) == name

    @pytest.mark.parametrize(
        "alias,expected",
        [
            ("lwt-8", "LWT-8"),
            ("readduo-lwt-8-noconv", "LWT-8-noconv"),
            ("select-6:3", "Select-6:3"),
            ("readduo-select-6:3", "Select-6:3"),
        ],
    )
    def test_parameterized_aliases_beyond_listed_names(self, alias, expected):
        assert canonical_scheme_name(alias) == expected
        assert is_scheme_name(expected)

    def test_unknown_names_pass_through_unchanged(self):
        assert canonical_scheme_name("NoSuchScheme") == "NoSuchScheme"
        assert not is_scheme_name("NoSuchScheme")


class TestEnumerateFamily:
    """Parameter-space enumeration over registered family axes."""

    def test_select_cross_product_in_axis_order(self):
        names = enumerate_family(
            "Select-<k>:<s>", {"k": [2, 4], "s": [1, 2]}
        )
        assert names == (
            "Select-2:1", "Select-2:2", "Select-4:1", "Select-4:2"
        )
        assert all(is_scheme_name(name) for name in names)

    def test_single_axis_leaves_others_at_canonical_default(self):
        assert enumerate_family("LWT-<k>[-noconv]", {"k": [2, 8]}) == (
            "LWT-2",
            "LWT-8",
        )

    def test_boolean_axis_renders_suffix(self):
        names = enumerate_family(
            "LWT-<k>[-noconv]",
            {"k": [4], "conversion_enabled": [True, False]},
        )
        assert names == ("LWT-4", "LWT-4-noconv")

    def test_duplicate_values_dedup_preserving_order(self):
        assert enumerate_family("LWT-<k>[-noconv]", {"k": [4, 4, 2]}) == (
            "LWT-4",
            "LWT-2",
        )

    def test_unknown_family_lists_enumerable_ones(self):
        with pytest.raises(KeyError, match="enumerable families"):
            enumerate_family("NoSuch-<x>", {"x": [1]})

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown axes"):
            enumerate_family("Select-<k>:<s>", {"k": [2], "zz": [1]})

    def test_empty_axis_pool_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            enumerate_family("Select-<k>:<s>", {"k": []})

    def test_catalog_exposes_axes(self):
        families = {
            f["syntax"]: f for f in scheme_catalog()["families"]
        }
        assert families["Select-<k>:<s>"]["axes"] == ["k", "s"]
        assert families["LWT-<k>[-noconv]"]["axes"] == [
            "k",
            "conversion_enabled",
        ]


class TestErrors:
    def test_unknown_scheme_error_lists_names_and_families(self, ctx):
        with pytest.raises(ValueError) as excinfo:
            make_policy("FancyScheme", ctx)
        message = str(excinfo.value)
        assert "unknown schemes: FancyScheme" in message
        for name in scheme_names():
            assert name in message
        assert "LWT-<k>[-noconv]" in message
        assert "Select-<k>:<s>" in message

    def test_unknown_scheme_message_accepts_lists(self):
        message = unknown_scheme_message(["A", "B"])
        assert message.startswith("unknown schemes: A, B;")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scheme("Ideal")(IdealPolicy)

    def test_register_scheme_argument_validation(self):
        with pytest.raises(ValueError, match="exactly one"):
            register_scheme()
        with pytest.raises(ValueError, match="exactly one"):
            register_scheme("X", pattern=r"X-\d+")
        with pytest.raises(ValueError, match="parse= and canonical="):
            register_scheme(pattern=r"X-\d+")
        with pytest.raises(ValueError, match="fixed-name"):
            register_scheme(
                pattern=r"X-(?P<k>\d+)",
                parse=lambda m: {"k": int(m.group("k"))},
                canonical=lambda p: f"X-{p['k']}",
                params={"k": 1},
            )


class TestPluginScheme:
    """A new scheme is one register_scheme call in one file: no edits to
    cli.py, runner.py, or parallel.py (the PR's acceptance criterion)."""

    @pytest.fixture
    def dummy_scheme(self):
        @register_scheme("DummyTest")
        class DummyTestPolicy(IdealPolicy):
            name = "DummyTest"

        yield DummyTestPolicy
        assert unregister_scheme("DummyTest")

    def test_appears_in_scheme_names(self, dummy_scheme):
        assert "DummyTest" in scheme_names()

    def test_appears_in_cli_list(self, dummy_scheme, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        assert "DummyTest" in capsys.readouterr().out

    def test_make_policy_and_aliases_work(self, dummy_scheme, ctx):
        assert canonical_scheme_name("readduo-dummytest") == "DummyTest"
        policy = make_policy("DummyTest", ctx)
        assert isinstance(policy, dummy_scheme)

    def test_sweeps_through_runner_without_core_edits(self, dummy_scheme,
                                                      small_config):
        from repro.experiments.runner import (
            SweepSettings,
            clear_sweep_cache,
            run_sweep,
        )

        settings = SweepSettings(
            schemes=("DummyTest",),
            workloads=("gcc",),
            target_requests=600,
            config=small_config,
        )
        try:
            grid = run_sweep(settings, jobs=1, cache=False)
            assert grid["gcc"]["DummyTest"].scheme == "DummyTest"
        finally:
            clear_sweep_cache()

    def test_unregister_restores_unknown(self):
        assert not is_scheme_name("DummyTest")
        assert not unregister_scheme("DummyTest")

    def test_resolve_scheme_returns_family_and_params(self):
        family, params = resolve_scheme("LWT-6-noconv")
        assert params == {"k": 6, "conversion_enabled": False}
        assert family.canonical(params) == "LWT-6-noconv"
