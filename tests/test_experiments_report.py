"""Unit tests for result containers and rendering."""

import pytest

from repro.experiments.report import ExperimentResult, format_value, geometric_mean


class TestFormatValue:
    def test_small_floats_scientific(self):
        assert "e" in format_value(3.5e-14)

    def test_normal_floats_fixed(self):
        assert format_value(1.234) == "1.234"

    def test_bools(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_zero(self):
        assert format_value(0.0) == "0"

    def test_strings_pass_through(self):
        assert format_value("abc") == "abc"


class TestExperimentResult:
    @pytest.fixture
    def result(self):
        return ExperimentResult(
            experiment_id="tableX",
            title="Example",
            headers=["name", "value"],
            rows=[["a", 1.0], ["b", 2.0]],
            notes="a note",
        )

    def test_render_contains_everything(self, result):
        text = result.render()
        assert "tableX" in text
        assert "Example" in text
        assert "a note" in text
        assert "1.000" in text

    def test_column(self, result):
        assert result.column("value") == [1.0, 2.0]

    def test_row_by(self, result):
        assert result.row_by("name", "b") == ["b", 2.0]

    def test_row_by_missing(self, result):
        with pytest.raises(KeyError):
            result.row_by("name", "zz")


class TestGeometricMean:
    def test_simple(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_identity(self):
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])
