"""Unit + property tests for GF(2^m) arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.gf import GF2m, PRIMITIVE_POLYS, get_field


@pytest.fixture(scope="module")
def gf16():
    return GF2m(4)


@pytest.fixture(scope="module")
def gf1024():
    return get_field(10)


class TestConstruction:
    def test_sizes(self, gf16):
        assert gf16.size == 16
        assert gf16.order == 15

    def test_rejects_unknown_m_without_poly(self):
        with pytest.raises(ValueError):
            GF2m(40)

    def test_rejects_wrong_degree_poly(self):
        with pytest.raises(ValueError):
            GF2m(4, primitive_poly=0b1011)  # degree 3, not 4

    def test_rejects_non_primitive_poly(self):
        # x^4 + x^3 + x^2 + x + 1 has order 5, not 15.
        with pytest.raises(ValueError):
            GF2m(4, primitive_poly=0b11111)

    def test_get_field_caches(self):
        assert get_field(10) is get_field(10)


class TestArithmetic:
    def test_mul_by_zero(self, gf16):
        assert gf16.mul(0, 7) == 0
        assert gf16.mul(7, 0) == 0

    def test_mul_by_one(self, gf16):
        for a in range(1, 16):
            assert gf16.mul(1, a) == a

    def test_inverse(self, gf16):
        for a in range(1, 16):
            assert gf16.mul(a, gf16.inv(a)) == 1

    def test_zero_has_no_inverse(self, gf16):
        with pytest.raises(ZeroDivisionError):
            gf16.inv(0)

    def test_div_matches_mul_inv(self, gf16):
        for a in range(1, 16):
            for b in range(1, 16):
                assert gf16.div(a, b) == gf16.mul(a, gf16.inv(b))

    def test_exp_log_roundtrip(self, gf16):
        for a in range(1, 16):
            assert gf16.exp(gf16.log(a)) == a

    def test_log_zero_undefined(self, gf16):
        with pytest.raises(ValueError):
            gf16.log(0)

    def test_pow(self, gf16):
        alpha = gf16.exp(1)
        assert gf16.pow(alpha, gf16.order) == 1
        assert gf16.pow(0, 0) == 1
        assert gf16.pow(0, 3) == 0

    @given(a=st.integers(1, 1023), b=st.integers(1, 1023), c=st.integers(1, 1023))
    @settings(max_examples=60, deadline=None)
    def test_mul_associative_property(self, gf1024, a, b, c):
        left = gf1024.mul(gf1024.mul(a, b), c)
        right = gf1024.mul(a, gf1024.mul(b, c))
        assert left == right

    @given(a=st.integers(0, 1023), b=st.integers(0, 1023))
    @settings(max_examples=60, deadline=None)
    def test_mul_commutative_property(self, gf1024, a, b):
        assert gf1024.mul(a, b) == gf1024.mul(b, a)


class TestPolynomials:
    def test_poly_eval_constant(self, gf16):
        assert gf16.poly_eval([5], 9) == 5

    def test_poly_eval_linear(self, gf16):
        # p(x) = 3 + 2x at x = 1 -> 3 ^ 2 = 1.
        assert gf16.poly_eval([3, 2], 1) == 1

    def test_poly_mul_degree(self, gf16):
        product = gf16.poly_mul([1, 1], [1, 1])  # (1+x)^2 = 1 + x^2
        assert product == [1, 0, 1]

    def test_poly_mul_zero(self, gf16):
        assert gf16.poly_mul([], [1, 2]) == []

    def test_minimal_polynomial_of_alpha(self, gf16):
        # alpha's minimal polynomial is the primitive polynomial itself.
        assert gf16.minimal_polynomial(1) == PRIMITIVE_POLYS[4]

    def test_minimal_polynomial_divides_field_poly(self, gf16):
        # Every minimal polynomial's roots satisfy x^15 = 1; check that
        # each conjugate is a root.
        mask = gf16.minimal_polynomial(3)
        coeffs = [(mask >> i) & 1 for i in range(mask.bit_length())]
        for power in (3, 6, 12, 9):  # conjugacy class of alpha^3
            assert gf16.poly_eval(coeffs, gf16.exp(power)) == 0
