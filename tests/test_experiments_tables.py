"""Tests for the Table I-X experiment drivers (analytic, fast)."""

import pytest

from repro.experiments import EXPERIMENTS
from repro.reliability.targets import DRAM_TARGET


class TestTable1And2:
    def test_table1_rows(self):
        result = EXPERIMENTS["table1"]()
        assert len(result.rows) == 4
        assert result.column("data") == ["01", "11", "10", "00"]

    def test_table2_means_shifted(self):
        t1 = EXPERIMENTS["table1"]()
        t2 = EXPERIMENTS["table2"]()
        mu_r = t1.column("mu(log10 R)")
        mu_m = t2.column("mu(log10 M)")
        for r, m in zip(mu_r, mu_m):
            assert m == pytest.approx(r - 4.0)


class TestTable3:
    @pytest.fixture(scope="class")
    def table3(self):
        return EXPERIMENTS["table3"]()

    def test_has_target_column(self, table3):
        assert table3.headers[-1] == "target"

    def test_unprotected_at_8s_matches_paper(self, table3):
        row = table3.row_by("S (s)", 8)
        value = row[table3.headers.index("E=0")]
        assert value == pytest.approx(7.09e-2, rel=0.1)

    def test_bch8_safe_exactly_up_to_8s(self, table3):
        idx_e8 = table3.headers.index("E=8")
        idx_target = table3.headers.index("target")
        safe = {
            row[0]: row[idx_e8] <= row[idx_target] for row in table3.rows
        }
        assert safe[8]
        assert not safe[16]

    def test_ler_monotone_in_interval(self, table3):
        column = [row[table3.headers.index("E=0")] for row in table3.rows]
        assert column == sorted(column)


class TestTable4:
    def test_m_sensing_safe_at_640(self):
        result = EXPERIMENTS["table4"]()
        row = result.row_by("S (s)", 640)
        e8 = row[result.headers.index("E=8")]
        assert e8 < DRAM_TARGET.budget_for_interval(640)

    def test_m_sensing_much_safer_than_r(self):
        t3 = EXPERIMENTS["table3"]()
        t4 = EXPERIMENTS["table4"]()
        r_640 = t3.row_by("S (s)", 640)[t3.headers.index("E=8")]
        m_640 = t4.row_by("S (s)", 640)[t4.headers.index("E=8")]
        assert m_640 < 1e-6 * r_640


class TestTable5:
    def test_paper_verdicts(self):
        result = EXPERIMENTS["table5"]()
        verdicts = {row[0]: row[-1] for row in result.rows}
        assert verdicts["R(BCH=8,S=8,W=1)"] is False
        assert verdicts["R(BCH=10,S=8,W=1)"] is True
        assert verdicts["M(BCH=8,S=640,W=1)"] is True


class TestTable7:
    def test_overhead_row_near_paper(self):
        result = EXPERIMENTS["table7"]()
        overhead = result.row_by("component", "hybrid-over-baseline overhead")
        assert overhead[1] == pytest.approx(0.0027, abs=0.0005)


class TestConfigTables:
    def test_table8_mentions_latencies(self):
        text = EXPERIMENTS["table8"]().render()
        assert "150" in text and "450" in text and "1000" in text

    def test_table9_write_dominates(self):
        result = EXPERIMENTS["table9"]()
        assert any("pJ/cell" in str(row[1]) for row in result.rows)

    def test_table10_fourteen_workloads(self):
        result = EXPERIMENTS["table10"]()
        assert len(result.rows) == 14
        names = result.column("workload")
        assert "mcf" in names and "sphinx3" in names
