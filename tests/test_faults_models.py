"""Unit + property tests for the fault models and the per-run injector."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.regimes import (
    CORRECTABLE_ERRORS,
    DETECTABLE_ERRORS,
    ErrorRegime,
    classify_error_count,
)
from repro.faults import (
    FaultCounters,
    FaultInjector,
    FaultSpec,
    FaultSpecError,
    line_fault_seed,
)

ENABLED = FaultSpec(
    stuck_line_rate=0.05, read_noise_rate=0.2, write_fail_rate=0.3, seed=7
)


class TestFaultSpec:
    def test_defaults_are_disabled(self):
        assert not FaultSpec().enabled

    @pytest.mark.parametrize(
        "field", ["stuck_line_rate", "read_noise_rate", "write_fail_rate"]
    )
    @pytest.mark.parametrize("bad", [-0.1, 1.5, "0.5", True, None])
    def test_rejects_bad_rates(self, field, bad):
        with pytest.raises(FaultSpecError):
            FaultSpec(**{field: bad})

    @pytest.mark.parametrize("field", ["stuck_cells_max", "write_fail_cells_max"])
    @pytest.mark.parametrize("bad", [0, -1, 2.5, True])
    def test_rejects_bad_counts(self, field, bad):
        with pytest.raises(FaultSpecError):
            FaultSpec(**{field: bad})

    @pytest.mark.parametrize("bad", [1.5, "3", True])
    def test_rejects_bad_seed(self, bad):
        with pytest.raises(FaultSpecError):
            FaultSpec(seed=bad)

    def test_integer_rates_coerce_to_float(self):
        spec = FaultSpec(read_noise_rate=1)
        assert spec.read_noise_rate == 1.0
        assert isinstance(spec.read_noise_rate, float)

    @pytest.mark.parametrize(
        "field", ["stuck_line_rate", "read_noise_rate", "write_fail_rate"]
    )
    def test_any_positive_rate_enables(self, field):
        assert FaultSpec(**{field: 0.01}).enabled

    def test_roundtrip_through_dict(self):
        assert FaultSpec.from_dict(ENABLED.to_dict()) == ENABLED

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(FaultSpecError, match="unknown fault keys"):
            FaultSpec.from_dict({"stuck_rate": 0.1})

    def test_from_dict_rejects_non_mapping(self):
        with pytest.raises(FaultSpecError):
            FaultSpec.from_dict([0.1])


class TestFaultCounters:
    def test_zero_counters_are_falsy(self):
        assert not FaultCounters()

    @pytest.mark.parametrize(
        "field", ["injected", "corrected", "detected_uncorrectable", "silent"]
    )
    def test_any_nonzero_counter_is_truthy(self, field):
        assert FaultCounters(**{field: 1})

    def test_roundtrip_through_dict(self):
        fc = FaultCounters(injected=5, corrected=2, detected_uncorrectable=1)
        assert FaultCounters.from_dict(fc.as_dict()) == fc


class TestLineFaultSeed:
    def test_is_32_bytes_and_stable(self):
        assert line_fault_seed("k", 0, 17) == line_fault_seed("k", 0, 17)
        assert len(line_fault_seed("k", 0, 17)) == 32

    @given(
        bank=st.integers(0, 7),
        line=st.integers(0, 2**20),
        other=st.integers(0, 2**20),
    )
    @settings(max_examples=50, deadline=None)
    def test_distinct_lines_get_distinct_seeds(self, bank, line, other):
        if line != other:
            assert line_fault_seed("k", bank, line) != line_fault_seed(
                "k", bank, other
            )

    def test_key_and_bank_are_part_of_the_seed(self):
        base = line_fault_seed("k", 0, 17)
        assert line_fault_seed("other", 0, 17) != base
        assert line_fault_seed("k", 1, 17) != base


def _schedule(injector, lines=range(64), reads=3):
    """A flattened fault-event trace: reads then a write, per line."""
    events = []
    for line in lines:
        for _ in range(reads):
            events.append(injector.read_errors(line))
        events.append(injector.record_write(line))
    return events


class TestFaultInjector:
    def test_rejects_bad_bank_count(self):
        with pytest.raises(ValueError):
            FaultInjector(ENABLED, key="k", num_banks=0)

    def test_same_spec_and_key_replay_identically(self):
        a = FaultInjector(ENABLED, key="run", num_banks=4)
        b = FaultInjector(ENABLED, key="run", num_banks=4)
        assert _schedule(a) == _schedule(b)

    def test_different_key_changes_the_schedule(self):
        a = FaultInjector(ENABLED, key="run", num_banks=4)
        b = FaultInjector(ENABLED, key="other-run", num_banks=4)
        assert _schedule(a) != _schedule(b)

    def test_fault_seed_changes_the_schedule(self):
        import dataclasses

        a = FaultInjector(ENABLED, key="run", num_banks=4)
        reseeded = dataclasses.replace(ENABLED, seed=ENABLED.seed + 1)
        b = FaultInjector(reseeded, key="run", num_banks=4)
        assert _schedule(a) != _schedule(b)

    def test_stuck_counts_stay_in_bounds(self):
        spec = FaultSpec(stuck_line_rate=1.0, stuck_cells_max=5)
        injector = FaultInjector(spec, key="k", num_banks=4)
        counts = {injector.line_state(line).stuck for line in range(256)}
        assert counts <= set(range(1, 6))
        assert len(counts) > 1  # the count draw actually varies

    def test_stuck_cells_persist_across_reads_and_writes(self):
        spec = FaultSpec(stuck_line_rate=1.0, stuck_cells_max=3)
        injector = FaultInjector(spec, key="k", num_banks=4)
        hard0, _ = injector.read_errors(0)
        injector.record_write(0)
        hard1, _ = injector.read_errors(0)
        assert hard0 == hard1 == injector.line_state(0).stuck > 0

    def test_failed_write_leaves_residual_until_next_write(self):
        spec = FaultSpec(write_fail_rate=1.0, write_fail_cells_max=2)
        injector = FaultInjector(spec, key="k", num_banks=4)
        residual = injector.record_write(0)
        assert 1 <= residual <= 2
        hard, _ = injector.read_errors(0)
        assert hard == residual  # persists across reads
        # Every write first clears the previous residue; with the rate
        # pinned at 1.0 the new draw replaces it rather than stacking.
        assert injector.record_write(0) <= 2

    def test_successful_write_clears_residual(self):
        injector = FaultInjector(FaultSpec(), key="k", num_banks=4)
        injector.line_state(0).residual = 3
        assert injector.read_errors(0) == (3, 0)
        assert injector.record_write(0) == 0
        assert injector.read_errors(0) == (0, 0)

    def test_read_noise_is_transient(self):
        spec = FaultSpec(read_noise_rate=1.0)
        injector = FaultInjector(spec, key="k", num_banks=4)
        hard, soft = injector.read_errors(0)
        assert (hard, soft) == (0, 1)

    def test_stuck_line_rate_is_roughly_honored(self):
        spec = FaultSpec(stuck_line_rate=0.25)
        injector = FaultInjector(spec, key="k", num_banks=4)
        faulty = sum(
            1 for line in range(2000) if injector.line_state(line).stuck
        )
        assert 0.15 < faulty / 2000 < 0.35

    def test_lines_touched_counts_materialized_state(self):
        injector = FaultInjector(ENABLED, key="k", num_banks=4)
        assert injector.lines_touched == 0
        injector.read_errors(3)
        injector.read_errors(3)
        injector.read_errors(9)
        assert injector.lines_touched == 2


class TestErrorRegimes:
    @given(errors=st.integers(0, CORRECTABLE_ERRORS))
    @settings(max_examples=20, deadline=None)
    def test_correctable_range(self, errors):
        assert classify_error_count(errors) is ErrorRegime.CORRECTED

    @given(errors=st.integers(CORRECTABLE_ERRORS + 1, DETECTABLE_ERRORS))
    @settings(max_examples=20, deadline=None)
    def test_detectable_range(self, errors):
        regime = classify_error_count(errors)
        assert regime is ErrorRegime.DETECTED_UNCORRECTABLE

    @given(errors=st.integers(DETECTABLE_ERRORS + 1, 592))
    @settings(max_examples=20, deadline=None)
    def test_silent_range(self, errors):
        assert classify_error_count(errors) is ErrorRegime.SILENT

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            classify_error_count(-1)

    def test_custom_thresholds(self):
        assert (
            classify_error_count(3, correctable=2, detectable=5)
            is ErrorRegime.DETECTED_UNCORRECTABLE
        )
