"""Unit tests for area and cells-per-line budgets."""

import pytest

from repro.pcm.area import (
    BCH8_CHECK_BITS,
    DATA_BITS_PER_LINE,
    SubarrayAreaModel,
    mlc_line_budget,
    normalized_area,
    scheme_cell_counts,
    tlc_line_budget,
)


class TestSubarrayArea:
    def test_overhead_near_paper_value(self):
        # The paper reports 0.27% overall area increase.
        overhead = SubarrayAreaModel().overhead_fraction()
        assert overhead == pytest.approx(0.0027, abs=0.0005)

    def test_occupancy_sums_to_one(self):
        table = SubarrayAreaModel().occupancy_table()
        assert sum(table.values()) == pytest.approx(1.0)

    def test_voltage_sense_smaller_than_current(self):
        model = SubarrayAreaModel()
        assert model.voltage_sense < model.current_sense


class TestLineBudgets:
    def test_mlc_budget_is_296_cells(self):
        budget = mlc_line_budget("Ideal")
        assert budget.mlc_cells == (DATA_BITS_PER_LINE + BCH8_CHECK_BITS) // 2
        assert budget.mlc_cells == 296
        assert budget.slc_cells == 0

    def test_lwt4_adds_six_flag_cells(self):
        budget = mlc_line_budget("LWT-4", lwt_k=4)
        assert budget.slc_cells == 6  # k + log2 k
        assert budget.total_cells == 302

    def test_lwt_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            mlc_line_budget("LWT-3", lwt_k=3)

    def test_tlc_budget_is_384_cells(self):
        budget = tlc_line_budget()
        assert budget.mlc_cells == 384
        assert budget.bits_per_cell == 1.5

    def test_mlc_denser_than_tlc(self):
        assert normalized_area(mlc_line_budget("Ideal"), tlc_line_budget()) < 0.8

    def test_scheme_counts_cover_figure11(self):
        counts = scheme_cell_counts(lwt_k=4)
        for name in ("Ideal", "Scrubbing", "M-metric", "TLC", "Hybrid",
                     "LWT-4", "Select-4"):
            assert name in counts

    def test_tlc_normalized_to_itself_is_one(self):
        assert normalized_area(tlc_line_budget(), tlc_line_budget()) == 1.0
