"""Differential tests: the explorer vs the exhaustive-grid oracle.

The pinned space (16 candidates: 4 schemes x 2 ECC strengths x 2 scrub
intervals on mcf) is small enough to brute-force — score every candidate
at the full budget and take the Pareto set directly — so the
successive-halving explorer's frontier can be compared for exact
equality: same members, same order, same objective vectors, and
byte-identical RunStats to a direct :class:`ExecutionService` run at the
full budget (the rung ladder always ends exactly at ``budget``).

A warm re-exploration against the same cache directory must simulate
zero units and reproduce the identical frontier — the resumability
contract (docs/EXPLORE.md).
"""

import pytest

from repro.experiments.runner import clear_sweep_cache
from repro.explore import (
    ExploreError,
    ExploreSpace,
    LocalExploreBackend,
    explore,
    pareto_indices,
    rung_budgets,
)
from repro.explore.engine import score_objectives
from repro.service import ExecutionService

#: Pinned differential space: every (scheme, E, S) combination scored,
#: 16 candidates total, all sharing one run unit per scheme (ECC and
#: scrub are analytic dimensions).
SPACE = ExploreSpace(
    schemes=("LWT-2", "LWT-4", "Select-4:1", "Select-4:2"),
    ecc_strengths=(4, 8),
    scrub_intervals_s=(8.0, 640.0),
    workload="mcf",
    seed=7,
)
BUDGET = 1_200
BASE_BUDGET = 300


@pytest.fixture(autouse=True)
def clean_memo():
    clear_sweep_cache()
    yield
    clear_sweep_cache()


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    """One cache directory for the whole module.

    Explorer, oracle, and warm-rerun tests deliberately share it: the
    granular cache is content-addressed, so sharing only ever avoids
    re-simulating identical units — it cannot leak state between tests.
    """
    return tmp_path_factory.mktemp("explore-cache")


def _explore(cache, jobs=1):
    with ExecutionService(jobs=jobs, cache=str(cache)) as service:
        return explore(
            SPACE,
            BUDGET,
            base_budget=BASE_BUDGET,
            backend=LocalExploreBackend(service),
        )


def _exhaustive(cache):
    """Oracle: every candidate scored at the full budget, Pareto set."""
    candidates = SPACE.candidates()
    baseline = SPACE.baseline_spec(dict(SPACE.configs)["base"], BUDGET)
    specs = [baseline] + [SPACE.spec_for(c, BUDGET) for c in candidates]
    with ExecutionService(jobs=1, cache=str(cache)) as service:
        outcome = service.submit(specs)
    tlc = outcome.results[baseline.run_hash(SPACE.workload, "TLC")]
    ideal = outcome.results[baseline.run_hash(SPACE.workload, "Ideal")]
    scored = []
    for cand in candidates:
        key = SPACE.spec_for(cand, BUDGET).run_hash(SPACE.workload, cand.scheme)
        scored.append(
            (cand, score_objectives(cand, outcome.results[key], tlc, ideal))
        )
    front = pareto_indices([vec for _c, vec in scored])
    return [scored[i] for i in front], outcome


class TestFrontierEqualsExhaustivePareto:
    def test_same_members_same_order_same_objectives(self, cache_dir):
        result = _explore(cache_dir)
        clear_sweep_cache()
        oracle, _outcome = _exhaustive(cache_dir)
        assert result.frontier_ids == tuple(c.cid for c, _v in oracle)
        assert [e.objectives for e in result.frontier] == [
            vec for _c, vec in oracle
        ]

    def test_frontier_stats_byte_identical_to_direct_run(self, cache_dir):
        result = _explore(cache_dir)
        clear_sweep_cache()
        _oracle, outcome = _exhaustive(cache_dir)
        assert result.frontier  # the comparison below must not be vacuous
        for entry in result.frontier:
            direct = outcome.results[entry.run_hash]
            assert entry.stats.to_dict() == direct.to_dict()

    def test_prune_audit_covers_every_non_frontier_candidate(self, cache_dir):
        result = _explore(cache_dir)
        all_ids = {c.cid for c in SPACE.candidates()}
        pruned_ids = {p.candidate.cid for p in result.pruned}
        assert pruned_ids == all_ids - set(result.frontier_ids)
        # Each prune names a survivor of its own rung as the dominator.
        for p in result.pruned:
            rung = result.rungs[p.rung]
            assert p.budget == rung.budget
            assert p.dominated_by in rung.scores


class TestResumability:
    def test_warm_reexplore_simulates_zero_units(self, cache_dir):
        cold = _explore(cache_dir)
        clear_sweep_cache()
        warm = _explore(cache_dir)
        assert warm.units.get("units_simulated") == 0
        assert warm.frontier_ids == cold.frontier_ids
        assert warm.frontier_digest() == cold.frontier_digest()
        assert [e.stats.to_dict() for e in warm.frontier] == [
            e.stats.to_dict() for e in cold.frontier
        ]

    def test_partial_cache_resume_reproduces_frontier(self, tmp_path, cache_dir):
        # A "killed mid-explore" cache holds only the first rung's units;
        # resuming from it must reproduce the cold frontier exactly.
        partial = tmp_path / "partial"
        with ExecutionService(jobs=1, cache=str(partial)) as service:
            baseline = SPACE.baseline_spec(dict(SPACE.configs)["base"], BASE_BUDGET)
            service.submit(
                [baseline]
                + [SPACE.spec_for(c, BASE_BUDGET) for c in SPACE.candidates()]
            )
        clear_sweep_cache()
        resumed = _explore(partial)
        reference = _explore(cache_dir)
        assert resumed.frontier_digest() == reference.frontier_digest()
        # The first rung was fully cached; only later rungs simulated.
        assert resumed.rungs[0].exec_stats["units_simulated"] == 0


class TestRungBudgets:
    def test_default_ladder_is_three_rungs(self):
        assert rung_budgets(8_000) == (2_000, 4_000, 8_000)

    def test_ladder_always_ends_at_budget(self):
        assert rung_budgets(3_000, base_budget=750) == (750, 1_500, 3_000)
        assert rung_budgets(1_000, base_budget=300) == (300, 600, 1_000)

    def test_base_at_or_above_budget_collapses_to_one_rung(self):
        assert rung_budgets(500, base_budget=500) == (500,)
        assert rung_budgets(3, base_budget=None) == (1, 2, 3)

    def test_eta_scales_ladder(self):
        assert rung_budgets(9_000, base_budget=1_000, eta=3) == (
            1_000,
            3_000,
            9_000,
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(budget=0),
            dict(budget=100, base_budget=0),
            dict(budget=100, base_budget=200),
            dict(budget=100, eta=1),
            dict(budget=100, eta=2.5),
        ],
    )
    def test_invalid_ladders_raise(self, kwargs):
        with pytest.raises(ExploreError):
            rung_budgets(
                kwargs.pop("budget"),
                base_budget=kwargs.get("base_budget"),
                eta=kwargs.get("eta", 2),
            )
