"""Unit tests for the adaptive R-M-read conversion controller."""

import numpy as np
import pytest

from repro.core.conversion import AdaptiveConversionController


def _controller(**kwargs):
    defaults = dict(
        rng=np.random.default_rng(0), initial_t=50, window_reads=100
    )
    defaults.update(kwargs)
    return AdaptiveConversionController(**defaults)


def _feed_window(controller, untracked_fraction):
    untracked = int(controller.window_reads * untracked_fraction)
    for i in range(controller.window_reads):
        controller.record_read(untracked=i < untracked)


class TestAdjustment:
    def test_decreases_when_p_overwhelming_and_stagnant(self):
        controller = _controller(patience=2)
        _feed_window(controller, 0.95)  # first window probes upward
        t_probe = controller.t
        _feed_window(controller, 0.95)  # stagnant 1
        _feed_window(controller, 0.95)  # stagnant 2 -> decay
        assert controller.t == t_probe - 10

    def test_increases_on_strong_improvement(self):
        controller = _controller()
        _feed_window(controller, 0.4)   # first window probes upward
        t_after_first = controller.t
        _feed_window(controller, 0.1)   # P shrank 4x -> push on
        assert controller.t == t_after_first + 10

    def test_backs_off_when_p_flat_past_patience(self):
        controller = _controller(patience=3)
        _feed_window(controller, 0.3)
        t_mid = controller.t
        _feed_window(controller, 0.3)
        _feed_window(controller, 0.3)
        assert controller.t == t_mid  # still within patience
        _feed_window(controller, 0.3)
        assert controller.t == t_mid - 10

    def test_improvement_resets_patience(self):
        controller = _controller(patience=2)
        _feed_window(controller, 0.4)
        _feed_window(controller, 0.4)   # stagnant 1
        _feed_window(controller, 0.1)   # improvement resets the count
        t_now = controller.t
        _feed_window(controller, 0.1)   # stagnant 1 again (no decay yet)
        assert controller.t == t_now

    def test_holds_on_small_p(self):
        controller = _controller(initial_t=30)
        _feed_window(controller, 0.0)
        _feed_window(controller, 0.0)
        assert controller.t == 30  # nothing untracked, nothing to do

    def test_t_stays_in_range(self):
        controller = _controller(initial_t=10, patience=1)
        for _ in range(20):
            _feed_window(controller, 0.95)
        assert controller.t == 0
        controller2 = _controller(initial_t=90)
        _feed_window(controller2, 0.8)
        _feed_window(controller2, 0.2)
        _feed_window(controller2, 0.04)
        assert controller2.t <= 100

    def test_untracked_fraction_reported(self):
        controller = _controller()
        assert controller.untracked_fraction is None
        _feed_window(controller, 0.25)
        assert controller.untracked_fraction == pytest.approx(0.25)


class TestConversionCoin:
    def test_disabled_never_converts(self):
        controller = _controller(enabled=False, initial_t=100)
        assert not any(controller.should_convert() for _ in range(100))

    def test_t0_never_converts(self):
        controller = _controller(initial_t=0)
        assert not any(controller.should_convert() for _ in range(100))

    def test_t100_always_converts(self):
        controller = _controller(initial_t=100)
        assert all(controller.should_convert() for _ in range(100))

    def test_t50_converts_about_half(self):
        controller = _controller(initial_t=50)
        rate = sum(controller.should_convert() for _ in range(4000)) / 4000
        assert rate == pytest.approx(0.5, abs=0.05)


class TestValidation:
    def test_rejects_bad_initial_t(self):
        with pytest.raises(ValueError):
            _controller(initial_t=150)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            _controller(window_reads=0)
