"""End-to-end tests for the functional ReadDuo controller on real cells."""

import numpy as np
import pytest

from repro.core.readout import ReadDuoController, ReadMechanism


@pytest.fixture
def controller(rng):
    return ReadDuoController(num_lines=8, rng=rng, start_time_s=0.0)


def _payload(rng):
    return bytes(rng.integers(0, 256, 64, dtype=np.uint8))


class TestWriteRead:
    def test_fresh_roundtrip_uses_r_read(self, controller, rng):
        data = _payload(rng)
        controller.write(0, data, now_s=10.0)
        outcome = controller.read(0, now_s=11.0)
        assert outcome.ok
        assert outcome.data == data
        assert outcome.mechanism is ReadMechanism.R_READ

    def test_all_lines_independent(self, controller, rng):
        payloads = {line: _payload(rng) for line in range(8)}
        for line, data in payloads.items():
            controller.write(line, data, now_s=1.0)
        for line, data in payloads.items():
            assert controller.read(line, now_s=2.0).data == data

    def test_rejects_wrong_payload_size(self, controller):
        with pytest.raises(ValueError):
            controller.write(0, b"short", now_s=0.0)

    def test_moderate_drift_corrected_in_r_read(self, controller, rng):
        data = _payload(rng)
        controller.write(0, data, now_s=0.0)
        # Within the scrub interval: a handful of drift errors at most.
        outcome = controller.read(0, now_s=600.0)
        assert outcome.ok
        assert outcome.data == data
        assert outcome.mechanism in (ReadMechanism.R_READ, ReadMechanism.RM_READ)


class TestFlagSteering:
    def test_stale_line_steered_to_m_sensing(self, controller, rng):
        data = _payload(rng)
        controller.write(0, data, now_s=0.0)
        # Scrubs pass without rewriting (assume no errors found when the
        # flags are consulted long after the write window expired).
        controller.scrub_line(0, now_s=640.0)
        controller.scrub_line(0, now_s=1280.0)
        outcome = controller.read(0, now_s=1281.0)
        assert outcome.mechanism is ReadMechanism.M_READ
        assert outcome.data == data

    def test_scrub_rewrite_re_enables_r_read(self, controller, rng):
        data = _payload(rng)
        controller.write(0, data, now_s=0.0)
        # Force drift errors visible to the M-sensing scrub.
        controller.array.alpha_m[0] += 0.08
        rewrote = controller.scrub_line(0, now_s=640.0)
        assert rewrote
        outcome = controller.read(0, now_s=650.0)
        assert outcome.mechanism is ReadMechanism.R_READ
        assert outcome.data == data


class TestHeavyDrift:
    def test_rm_fallback_recovers_old_line(self, rng):
        controller = ReadDuoController(num_lines=4, rng=rng, start_time_s=0.0)
        data = bytes(rng.integers(0, 256, 64, dtype=np.uint8))
        controller.write(0, data, now_s=0.0)
        # Age far beyond the R-reliability window but keep the flags
        # "tracked" by staying inside the first sub-interval anchor — the
        # hazardous case the paper's W=0 / LWT machinery prevents; the
        # BCH detect->M-sensing fallback must still return correct data.
        controller.array.alpha_r[0] += 0.04
        outcome = controller.read(0, now_s=150.0)
        assert outcome.ok
        assert outcome.data == data

    def test_m_sensing_reliable_at_extreme_age(self, rng):
        controller = ReadDuoController(num_lines=2, rng=rng, start_time_s=0.0)
        data = bytes(rng.integers(0, 256, 64, dtype=np.uint8))
        controller.write(0, data, now_s=0.0)
        controller.scrub_line(0, now_s=640.0)
        controller.scrub_line(0, now_s=1280.0)
        # ~3 hours later, steered to M-sensing.
        outcome = controller.read(0, now_s=10_000.0)
        assert outcome.data == data
        assert outcome.mechanism is ReadMechanism.M_READ


class TestScrubbing:
    def test_w1_skips_clean_lines(self, controller, rng):
        controller.write(0, _payload(rng), now_s=0.0)
        rewrote = controller.scrub_line(0, now_s=1.0)
        assert not rewrote

    def test_w0_always_rewrites(self, rng):
        controller = ReadDuoController(num_lines=2, rng=rng, w=0)
        controller.write(0, _payload(rng), now_s=0.0)
        assert controller.scrub_line(0, now_s=1.0)

    def test_sweep_counts(self, controller, rng):
        for line in range(8):
            controller.write(line, _payload(rng), now_s=0.0)
        rewrites = controller.scrub_sweep(now_s=5.0)
        assert controller.stats["scrubs"] == 8
        assert rewrites == controller.stats["scrub_rewrites"]

    def test_scrub_preserves_data_across_many_intervals(self, controller, rng):
        data = _payload(rng)
        controller.write(0, data, now_s=0.0)
        now = 0.0
        for _ in range(5):
            now += 640.0
            controller.scrub_line(0, now_s=now)
        outcome = controller.read(0, now_s=now + 1.0)
        assert outcome.data == data


class TestStats:
    def test_counters_track_mechanisms(self, controller, rng):
        controller.write(0, _payload(rng), now_s=0.0)
        controller.read(0, now_s=1.0)
        controller.scrub_line(0, now_s=640.0)
        controller.scrub_line(0, now_s=1280.0)
        controller.read(0, now_s=1281.0)
        assert controller.stats["reads"] == 2
        assert controller.stats["r_reads"] == 1
        assert controller.stats["m_reads"] == 1
