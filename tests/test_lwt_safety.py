"""The LWT safety property: a certified R-read implies true age < S.

R-sensing is only reliable within one scrub interval of the line's last
write (paper Section III-B/C). Both LWT implementations — the Figure 5
flag automaton and the simulator's quantized tracker — must therefore
satisfy: *whenever they certify R-sensing, the line's last
drift-resetting write is strictly less than S seconds in the past.*
These hypothesis tests drive both implementations with random event
schedules and check the property at every read.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lwt import LwtLineFlags, QuantizedTracker

S = 640.0
K = 4
SUB = S / K


class TestAutomatonSafety:
    @given(
        write_times=st.lists(
            st.floats(min_value=0.0, max_value=10 * S), min_size=1, max_size=8
        ),
        read_offsets=st.lists(
            st.floats(min_value=0.0, max_value=3 * S), min_size=1, max_size=6
        ),
        rewrite_on_scrub=st.booleans(),
    )
    @settings(max_examples=120, deadline=None)
    def test_certified_r_read_implies_age_below_s(
        self, write_times, read_offsets, rewrite_on_scrub
    ):
        """Replay writes/scrubs/reads in time order; check every read."""
        flags = LwtLineFlags(k=K)
        writes = sorted(write_times)
        horizon = writes[-1] + max(read_offsets) + S
        # Scrubs at every multiple of S (the per-line sweep); a scrub that
        # rewrites resets the drift clock too.
        events = [("scrub", (n + 1) * S) for n in range(int(horizon / S) + 1)]
        events += [("write", t) for t in writes]
        events += [("read", writes[-1] + off) for off in read_offsets]
        events.sort(key=lambda e: (e[1], e[0] != "scrub"))

        last_reset = None  # time of the last write or scrub-rewrite
        last_scrub = 0.0
        for kind, t in events:
            if kind == "write":
                rel = int((t - last_scrub) // SUB)
                flags.on_write(rel)
                last_reset = t
            elif kind == "scrub":
                flags.on_scrub(rewrote=rewrite_on_scrub)
                if rewrite_on_scrub:
                    last_reset = t
                last_scrub = t
            else:  # read
                rel = int((t - last_scrub) // SUB)
                if flags.tracked_for_read(rel) and last_reset is not None:
                    age = t - last_reset
                    assert age < S + 1e-6, (
                        f"flags certified R-sensing at age {age:.1f}s"
                    )


class TestTrackerSafety:
    @given(
        write_time=st.floats(min_value=0.0, max_value=50 * S),
        read_offset=st.floats(min_value=0.0, max_value=5 * S),
    )
    @settings(max_examples=200, deadline=None)
    def test_certified_read_age_below_s(self, write_time, read_offset):
        tracker = QuantizedTracker(k=K, scrub_interval_s=S)
        tracker.record_event(0, write_time)
        read_time = write_time + read_offset
        if tracker.is_tracked(0, read_time, default_last_s=0.0):
            assert read_offset < S + 1e-6

    @given(
        write_time=st.floats(min_value=0.0, max_value=50 * S),
        read_offset=st.floats(min_value=0.0, max_value=5 * S),
    )
    @settings(max_examples=200, deadline=None)
    def test_tracker_never_more_permissive_than_exact_window(
        self, write_time, read_offset
    ):
        """Quantization may only *shrink* the R-eligible window."""
        tracker = QuantizedTracker(k=K, scrub_interval_s=S)
        tracker.record_event(0, write_time)
        read_time = write_time + read_offset
        tracked = tracker.is_tracked(0, read_time, default_last_s=0.0)
        exact_window = read_offset < S
        if tracked:
            assert exact_window


class TestCrossImplementationAgreement:
    @pytest.mark.parametrize("write_sub", range(K))
    @pytest.mark.parametrize("read_cycle", [0, 1, 2])
    def test_decisions_agree_on_aligned_schedules(self, write_sub, read_cycle):
        """With scrubs on the absolute S-grid, both implementations make
        the same decision for any (write sub-interval, read sub-interval)
        pair."""
        for read_sub in range(K):
            write_time = write_sub * SUB + SUB / 2
            read_time = read_cycle * S + read_sub * SUB + SUB * 0.75
            if read_time <= write_time:
                continue
            # Automaton.
            flags = LwtLineFlags(k=K)
            n_scrubs_before_write = int(write_time // S)
            for _ in range(n_scrubs_before_write):
                flags.on_scrub(rewrote=False)
            flags.on_write(write_sub)
            for _ in range(int(read_time // S) - n_scrubs_before_write):
                flags.on_scrub(rewrote=False)
            automaton = flags.tracked_for_read(read_sub)
            # Tracker.
            tracker = QuantizedTracker(k=K, scrub_interval_s=S)
            tracker.record_event(0, write_time)
            quantized = tracker.is_tracked(0, read_time, default_last_s=0.0)
            assert automaton == quantized, (
                f"write sub {write_sub}, read cycle {read_cycle} "
                f"sub {read_sub}: automaton={automaton} tracker={quantized}"
            )
