"""Tests for the persistent on-disk sweep cache."""

import dataclasses
import json

import pytest

from repro.experiments.cache import SweepCache, settings_key
from repro.experiments.runner import SweepSettings, clear_sweep_cache, run_sweep
from repro.memsim.config import MemoryConfig
from repro.pcm.params import TimingParams


@pytest.fixture(autouse=True)
def clean_cache():
    clear_sweep_cache()
    yield
    clear_sweep_cache()


SMALL = SweepSettings(
    schemes=("Ideal", "Hybrid"),
    workloads=("gcc",),
    target_requests=1_200,
)


def _flat(grid):
    return [
        (w, s, stats.to_dict())
        for w, per_scheme in grid.items()
        for s, stats in per_scheme.items()
    ]


class TestSettingsKey:
    def test_stable_for_equal_settings(self):
        assert settings_key(SMALL) == settings_key(
            SweepSettings(
                schemes=("Ideal", "Hybrid"),
                workloads=("gcc",),
                target_requests=1_200,
            )
        )

    def test_explicit_all_workloads_equals_default(self):
        # The default () expands to all workloads; listing them explicitly
        # must hit the same cache entry.
        default = SweepSettings(schemes=("Ideal",))
        explicit = SweepSettings(
            schemes=("Ideal",), workloads=default.effective_workloads()
        )
        assert settings_key(default) == settings_key(explicit)

    def test_each_sweep_parameter_changes_the_key(self):
        base = settings_key(SMALL)
        variants = [
            SweepSettings(schemes=("Ideal",), workloads=("gcc",),
                          target_requests=1_200),
            SweepSettings(schemes=SMALL.schemes, workloads=("mcf",),
                          target_requests=1_200),
            SweepSettings(schemes=SMALL.schemes, workloads=("gcc",),
                          target_requests=2_400),
            SweepSettings(schemes=SMALL.schemes, workloads=("gcc",),
                          target_requests=1_200, seed=7),
        ]
        keys = {settings_key(v) for v in variants}
        assert base not in keys and len(keys) == len(variants)

    @pytest.mark.parametrize(
        "change",
        [
            {"num_banks": 8},
            {"cancel_threshold": 0.25},
            {"write_queue_depth": 16, "write_drain_watermark": 12},
            {"timing": TimingParams(r_read_ns=120.0)},
        ],
    )
    def test_any_config_field_invalidates(self, change):
        changed = SweepSettings(
            schemes=SMALL.schemes,
            workloads=SMALL.workloads,
            target_requests=SMALL.target_requests,
            config=dataclasses.replace(MemoryConfig(), **change),
        )
        assert settings_key(changed) != settings_key(SMALL)

    def test_version_is_part_of_the_key(self, monkeypatch):
        # settings_key delegates to SimSpec.content_hash, which reads the
        # package version through the spec module's global.
        import repro.experiments.spec as spec_mod

        base = settings_key(SMALL)
        monkeypatch.setattr(spec_mod, "__version__", "0.0.0-test")
        assert settings_key(SMALL) != base


class TestRoundTrip:
    def test_store_then_fresh_instance_reload_bit_for_bit(self, tmp_path):
        grid = run_sweep(SMALL, jobs=1, cache=SweepCache(tmp_path))
        reloaded = SweepCache(tmp_path).load(SMALL)
        assert reloaded is not None
        assert _flat(grid) == _flat(reloaded)

    def test_order_sensitive_float_sums_survive_reload(self, tmp_path):
        # dynamic_energy_pj sums by_category.values(); a store that
        # reorders the category dict changes the summation order and the
        # result by one ulp (regression: sort_keys in the cache writer).
        grid = run_sweep(SMALL, jobs=1, cache=SweepCache(tmp_path))
        reloaded = SweepCache(tmp_path).load(SMALL)
        for w, per_scheme in grid.items():
            for s, stats in per_scheme.items():
                assert reloaded[w][s].dynamic_energy_pj == stats.dynamic_energy_pj

    def test_run_sweep_warm_cache_skips_simulation(self, tmp_path, monkeypatch):
        run_sweep(SMALL, jobs=1, cache=SweepCache(tmp_path))
        clear_sweep_cache()

        import repro.experiments.planner as planner_mod

        def explode(*_args, **_kwargs):
            raise AssertionError("warm cache must not simulate")

        monkeypatch.setattr(planner_mod, "simulate_unit", explode)
        monkeypatch.setattr(planner_mod, "run_units_parallel", explode)
        grid = run_sweep(SMALL, jobs=1, cache=SweepCache(tmp_path))
        assert set(grid["gcc"]) == {"Ideal", "Hybrid"}

    def test_miss_on_empty_dir(self, tmp_path):
        assert SweepCache(tmp_path).load(SMALL) is None

    def test_corrupt_file_is_a_miss(self, tmp_path):
        cache = SweepCache(tmp_path)
        run_sweep(SMALL, jobs=1, cache=cache)
        cache.path_for(SMALL).write_text("{not json")
        assert cache.load(SMALL) is None

    def test_clear_removes_entries(self, tmp_path):
        cache = SweepCache(tmp_path)
        run_sweep(SMALL, jobs=1, cache=cache)
        # One whole-sweep file plus one granular entry per run: clear()
        # covers both stores and reports the combined count.
        n_runs = len(SMALL.schemes) * len(SMALL.workloads)
        assert cache.clear() == 1 + n_runs
        assert cache.load(SMALL) is None

    def test_stored_payload_is_json(self, tmp_path):
        cache = SweepCache(tmp_path)
        run_sweep(SMALL, jobs=1, cache=cache)
        payload = json.loads(cache.path_for(SMALL).read_text())
        assert payload["runs"]["gcc"]["Hybrid"]["reads"] > 0


class TestCacheCounters:
    """Hit/miss/stale accounting, counted in runs (workload x scheme)."""

    N_RUNS = len(SMALL.schemes) * len(SMALL.workloads)

    def test_cold_sweep_reports_all_misses(self, tmp_path):
        cache = SweepCache(tmp_path)
        run_sweep(SMALL, jobs=1, cache=cache)
        assert cache.counters.as_dict() == {
            "hits": 0, "misses": self.N_RUNS, "stale": 0, "stores": 1,
            "quarantined": 0,
        }

    def test_warm_rerun_reports_all_hits(self, tmp_path):
        cache = SweepCache(tmp_path)
        run_sweep(SMALL, jobs=1, cache=cache)
        clear_sweep_cache()
        fresh = SweepCache(tmp_path)
        run_sweep(SMALL, jobs=1, cache=fresh)
        assert fresh.counters.hits == self.N_RUNS
        assert fresh.counters.misses == 0
        assert fresh.counters.stores == 0

    def test_config_change_reports_misses_again(self, tmp_path):
        cache = SweepCache(tmp_path)
        run_sweep(SMALL, jobs=1, cache=cache)
        clear_sweep_cache()
        changed = SweepSettings(
            schemes=SMALL.schemes,
            workloads=SMALL.workloads,
            target_requests=SMALL.target_requests,
            config=dataclasses.replace(MemoryConfig(), num_banks=8),
        )
        fresh = SweepCache(tmp_path)
        run_sweep(changed, jobs=1, cache=fresh)
        assert fresh.counters.hits == 0
        assert fresh.counters.misses == self.N_RUNS

    def test_granular_entries_survive_whole_sweep_corruption(self, tmp_path):
        # The per-run store is written beside the whole-sweep entry, so
        # corrupting the whole-sweep file alone still yields all hits.
        cache = SweepCache(tmp_path)
        run_sweep(SMALL, jobs=1, cache=cache)
        clear_sweep_cache()
        cache.path_for(SMALL).write_text("{not json")
        fresh = SweepCache(tmp_path)
        run_sweep(SMALL, jobs=1, cache=fresh)
        assert fresh.counters.hits == self.N_RUNS
        assert fresh.counters.misses == 0

    def test_corrupt_files_count_as_stale_and_missed(self, tmp_path):
        cache = SweepCache(tmp_path)
        run_sweep(SMALL, jobs=1, cache=cache)
        clear_sweep_cache()
        cache.path_for(SMALL).write_text("{not json")
        for entry in (tmp_path / "runs").glob("*.json"):
            entry.write_text("{not json")
        fresh = SweepCache(tmp_path)
        run_sweep(SMALL, jobs=1, cache=fresh)
        assert fresh.counters.stale == self.N_RUNS
        assert fresh.counters.misses == self.N_RUNS
        assert fresh.counters.hits == 0

    def test_memo_hit_bypasses_persistent_counters(self, tmp_path):
        cache = SweepCache(tmp_path)
        run_sweep(SMALL, jobs=1, cache=cache)
        before = cache.counters.as_dict()
        run_sweep(SMALL, jobs=1, cache=cache)  # served from in-process memo
        assert cache.counters.as_dict() == before


class TestParallelSerialCacheEquivalence:
    def test_parallel_write_serial_read_identical(self, tmp_path):
        parallel = run_sweep(SMALL, jobs=2, cache=SweepCache(tmp_path))
        clear_sweep_cache()
        # The serial uncached run must match what the parallel run cached.
        serial = run_sweep(SMALL, jobs=1)
        cached = SweepCache(tmp_path).load(SMALL)
        assert _flat(serial) == _flat(parallel) == _flat(cached)


class TestRunCacheGzip:
    """Transparent gzip compression of granular run-cache entries."""

    @pytest.fixture(scope="class")
    def one_stats(self):
        grid = run_sweep(
            SweepSettings(
                schemes=("Ideal",), workloads=("gcc",), target_requests=400
            ),
            jobs=1, cache=False,
        )
        return grid["gcc"]["Ideal"]

    def _cache(self, tmp_path, monkeypatch, min_bytes):
        from repro.experiments.cache import RUN_GZIP_MIN_ENV, RunCache

        monkeypatch.setenv(RUN_GZIP_MIN_ENV, str(min_bytes))
        return RunCache(tmp_path)

    def test_below_threshold_stays_plain_json(
        self, tmp_path, monkeypatch, one_stats
    ):
        cache = self._cache(tmp_path, monkeypatch, 10**9)
        path = cache.store("k1", one_stats)
        blob = path.read_bytes()
        assert blob[:1] == b"{"  # plain JSON, no gzip magic
        assert cache.load("k1").to_dict() == one_stats.to_dict()
        assert cache.entry_raw_bytes("k1") == len(blob)
        assert cache.entry_bytes("k1") == len(blob)

    def test_above_threshold_compresses_and_round_trips(
        self, tmp_path, monkeypatch, one_stats
    ):
        cache = self._cache(tmp_path, monkeypatch, 1)
        path = cache.store("k1", one_stats)
        blob = path.read_bytes()
        assert blob[:2] == b"\x1f\x8b"  # gzip magic
        loaded = cache.load("k1")
        assert loaded is not None
        assert loaded.to_dict() == one_stats.to_dict()
        # Raw size comes from the gzip ISIZE trailer, stored from st_size.
        raw = cache.entry_raw_bytes("k1")
        stored = cache.entry_bytes("k1")
        assert stored == len(blob)
        assert raw > stored  # run stats compress well

    def test_reload_preserves_order_sensitive_floats(
        self, tmp_path, monkeypatch, one_stats
    ):
        # Bit-for-bit: the decompressed payload must preserve insertion
        # order so order-sensitive float sums reload to the last ulp.
        cache = self._cache(tmp_path, monkeypatch, 1)
        cache.store("k1", one_stats)
        assert list(cache.load("k1").to_dict()) == list(one_stats.to_dict())

    def test_compressed_bytes_are_deterministic(
        self, tmp_path, monkeypatch, one_stats
    ):
        a = self._cache(tmp_path / "a", monkeypatch, 1)
        b = self._cache(tmp_path / "b", monkeypatch, 1)
        path_a = a.store("k1", one_stats)
        path_b = b.store("k1", one_stats)
        # mtime=0 in the gzip header: independent writers emit identical
        # bytes, so concurrent last-write-wins stores are a no-op.
        assert path_a.read_bytes() == path_b.read_bytes()

    def test_both_formats_coexist_transparently(
        self, tmp_path, monkeypatch, one_stats
    ):
        plain = self._cache(tmp_path, monkeypatch, 10**9)
        plain.store("plain-key", one_stats)
        mixed = self._cache(tmp_path, monkeypatch, 1)
        mixed.store("gz-key", one_stats)
        for key in ("plain-key", "gz-key"):
            loaded = mixed.load(key)
            assert loaded is not None
            assert loaded.to_dict() == one_stats.to_dict()

    def test_truncated_gzip_entry_is_a_miss(
        self, tmp_path, monkeypatch, one_stats
    ):
        cache = self._cache(tmp_path, monkeypatch, 1)
        path = cache.store("k1", one_stats)
        path.write_bytes(path.read_bytes()[:20])  # truncate mid-stream
        assert cache.load("k1") is None

    def test_zero_disables_compression(
        self, tmp_path, monkeypatch, one_stats
    ):
        cache = self._cache(tmp_path, monkeypatch, 0)
        path = cache.store("k1", one_stats)
        assert path.read_bytes()[:1] == b"{"

    def test_garbage_env_falls_back_to_default(self, tmp_path, monkeypatch):
        from repro.experiments.cache import (
            _DEFAULT_GZIP_MIN_BYTES,
            RUN_GZIP_MIN_ENV,
            RunCache,
        )

        monkeypatch.setenv(RUN_GZIP_MIN_ENV, "not-a-number")
        assert RunCache(tmp_path).gzip_min_bytes == _DEFAULT_GZIP_MIN_BYTES
