"""Tests for the extension experiments (BCH study, S sweep, precise writes)."""

import pytest

from repro.baselines.precise import PreciseWritePolicy
from repro.core.schemes import PolicyContext
from repro.experiments.extras import (
    bch_detection_study,
    precise_write_comparison,
    scrub_interval_sensitivity,
)


class TestBchDetectionStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return bch_detection_study(max_errors=19, trials=6)

    def test_corrects_through_eight(self, result):
        for row in result.rows[:8]:
            assert row[1] == 1.0, row

    def test_detects_nine_through_seventeen(self, result):
        for row in result.rows[8:17]:
            assert row[2] == 1.0, row

    def test_no_miscorrection_within_detection_range(self, result):
        for row in result.rows[:17]:
            assert row[3] == 0.0, row

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            bch_detection_study(max_errors=0)


class TestScrubIntervalSensitivity:
    def test_longer_intervals_scrub_less(self):
        result = scrub_interval_sensitivity(
            intervals_s=(160.0, 640.0, 2560.0), target_requests=2_500
        )
        ops = result.column("scrub ops")
        assert ops == sorted(ops, reverse=True)

    def test_very_short_interval_hurts(self):
        result = scrub_interval_sensitivity(
            intervals_s=(160.0, 640.0), target_requests=2_500
        )
        exec_col = result.column("exec")
        assert exec_col[0] > exec_col[1]


class TestPreciseWrite:
    def test_policy_earns_longer_interval(self, small_profile, small_config):
        ctx = PolicyContext(profile=small_profile, config=small_config)
        policy = PreciseWritePolicy(ctx, program_width_sigma=2.0)
        assert policy.scrub_interval_s > 8.0

    def test_narrower_programming_longer_interval(
        self, small_profile, small_config
    ):
        ctx = PolicyContext(profile=small_profile, config=small_config)
        wide = PreciseWritePolicy(ctx, program_width_sigma=2.5)
        narrow = PreciseWritePolicy(ctx, program_width_sigma=1.8)
        assert narrow.scrub_interval_s >= wide.scrub_interval_s

    def test_rejects_width_at_boundary(self, small_profile, small_config):
        ctx = PolicyContext(profile=small_profile, config=small_config)
        with pytest.raises(ValueError):
            PreciseWritePolicy(ctx, program_width_sigma=3.0)

    def test_comparison_shape(self):
        result = precise_write_comparison(target_requests=2_500)
        rows = {row[0]: row for row in result.rows}
        # Precise-write beats Scrubbing (its reason to exist) but ReadDuo
        # still wins without touching the write path.
        assert rows["Precise-write"][1] < rows["Scrubbing"][1]
        assert rows["LWT-4"][1] < rows["Precise-write"][1]
        assert rows["Precise-write"][4] < rows["Scrubbing"][4]  # fewer scrubs


class TestMonteCarloValidation:
    def test_model_agreement(self):
        from repro.experiments.extras import montecarlo_validation

        result = montecarlo_validation(
            ages_s=(64.0, 640.0), num_lines=600, seed=3
        )
        r_rows = [row for row in result.rows if row[0] == "R"]
        for row in r_rows:
            assert row[4] < 0.3, row  # relative error

    def test_both_metrics_reported(self):
        from repro.experiments.extras import montecarlo_validation

        result = montecarlo_validation(ages_s=(64.0,), num_lines=100)
        assert {row[0] for row in result.rows} == {"R", "M"}
