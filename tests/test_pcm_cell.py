"""Unit + property tests for the cell-level drift model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pcm.cell import (
    Cell,
    drift_log10,
    drifted_log10,
    sample_alpha,
    sample_initial_log10,
)
from repro.pcm.params import M_METRIC, R_METRIC


class TestSampleInitial:
    def test_within_program_window(self, rng):
        levels = np.full(20_000, 2)
        values = sample_initial_log10(R_METRIC, levels, rng)
        width = R_METRIC.program_width_sigma * R_METRIC.sigma
        assert values.min() >= 5.0 - width - 1e-12
        assert values.max() <= 5.0 + width + 1e-12

    def test_mean_matches_level(self, rng):
        for level in range(4):
            values = sample_initial_log10(R_METRIC, np.full(20_000, level), rng)
            assert values.mean() == pytest.approx(R_METRIC.mu[level], abs=0.01)

    def test_std_close_to_sigma(self, rng):
        values = sample_initial_log10(R_METRIC, np.full(50_000, 1), rng)
        # Truncation at 2.746 sigma trims ~0.4% of the variance.
        assert values.std() == pytest.approx(R_METRIC.sigma, rel=0.05)

    def test_rejects_bad_level(self, rng):
        with pytest.raises(ValueError):
            sample_initial_log10(R_METRIC, np.asarray([4]), rng)

    def test_shape_preserved(self, rng):
        values = sample_initial_log10(R_METRIC, np.zeros((3, 5), dtype=int), rng)
        assert values.shape == (3, 5)


class TestSampleAlpha:
    def test_nonnegative(self, rng):
        alpha = sample_alpha(R_METRIC, np.full(50_000, 3), rng)
        assert alpha.min() >= 0.0

    def test_mean_matches_level(self, rng):
        for level in range(4):
            alpha = sample_alpha(R_METRIC, np.full(30_000, level), rng)
            assert alpha.mean() == pytest.approx(
                R_METRIC.mu_alpha[level], rel=0.05
            )

    def test_higher_levels_drift_faster(self, rng):
        means = [
            sample_alpha(R_METRIC, np.full(20_000, level), rng).mean()
            for level in range(4)
        ]
        assert means == sorted(means)


class TestDrift:
    def test_no_drift_before_t0(self):
        assert drift_log10(R_METRIC, 0.1, 0.5) == pytest.approx(0.0)

    def test_one_decade(self):
        assert drift_log10(R_METRIC, 0.06, 10.0) == pytest.approx(0.06)

    def test_monotone_in_time(self):
        times = np.asarray([1.0, 10.0, 100.0, 1e4, 1e6])
        drifts = drift_log10(R_METRIC, 0.05, times)
        assert np.all(np.diff(drifts) > 0)

    def test_drifted_adds_initial(self):
        assert drifted_log10(R_METRIC, 4.0, 0.1, 100.0) == pytest.approx(4.2)

    @given(
        alpha=st.floats(min_value=0.0, max_value=0.2),
        t=st.floats(min_value=1.0, max_value=1e9),
    )
    @settings(max_examples=50, deadline=None)
    def test_drift_nonnegative_property(self, alpha, t):
        assert float(drift_log10(R_METRIC, alpha, t)) >= 0.0


class TestCell:
    def test_program_and_sense_fresh(self, rng):
        for level in range(4):
            cell = Cell.program(R_METRIC, level, rng)
            assert cell.sense_at(R_METRIC, 0.0) == level
            assert not cell.has_drift_error_at(R_METRIC, 0.0)

    def test_forced_drift_error(self):
        # A hand-built cell right below its boundary with a huge alpha.
        cell = Cell(level=1, log10_value=4.45, alpha=0.5, write_time_s=0.0)
        assert cell.sense_at(R_METRIC, 1.0) == 1
        assert cell.sense_at(R_METRIC, 100.0) == 2
        assert cell.has_drift_error_at(R_METRIC, 100.0)

    def test_top_level_never_errors(self, rng):
        cell = Cell.program(R_METRIC, 3, rng)
        assert not cell.has_drift_error_at(R_METRIC, 1e9)

    def test_m_metric_cell_drifts_less(self, rng):
        errors_r = errors_m = 0
        for seed in range(300):
            local = np.random.default_rng(seed)
            cr = Cell.program(R_METRIC, 2, local)
            local = np.random.default_rng(seed)
            cm = Cell.program(M_METRIC, 2, local)
            errors_r += cr.has_drift_error_at(R_METRIC, 1e5)
            errors_m += cm.has_drift_error_at(M_METRIC, 1e5)
        assert errors_m <= errors_r

    def test_write_time_offsets_age(self):
        cell = Cell(level=1, log10_value=4.4, alpha=0.1, write_time_s=100.0)
        assert cell.value_log10_at(R_METRIC, 100.0) == pytest.approx(4.4)
        later = cell.value_log10_at(R_METRIC, 1100.0)
        assert later == pytest.approx(4.4 + 0.1 * 3, abs=1e-9)
