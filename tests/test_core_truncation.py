"""Tests for the write-truncation wrapper and its engine integration."""

import numpy as np
import pytest

from repro.core.schemes import PolicyContext, make_policy
from repro.core.truncation import WriteTruncationWrapper
from repro.memsim.config import MemoryConfig
from repro.memsim.engine import simulate
from repro.memsim.policy import ReadMode
from repro.traces.generator import generate_trace


@pytest.fixture
def wrapped(small_profile, small_config):
    inner = make_policy(
        "LWT-4", PolicyContext(profile=small_profile, config=small_config, seed=3)
    )
    return WriteTruncationWrapper(inner, rng=np.random.default_rng(3))


class TestWrapper:
    def test_name_marks_truncation(self, wrapped):
        assert wrapped.name.endswith("+trunc")

    def test_scrub_interval_delegated(self, wrapped):
        assert wrapped.scrub_interval_s == wrapped.inner.scrub_interval_s

    def test_write_latency_scaled_down(self, wrapped):
        epoch = 1e6
        scales = [wrapped.on_write(line, epoch).latency_scale for line in range(50)]
        assert all(0.0 < s <= 1.0 for s in scales)
        assert np.mean(scales) < 0.95

    def test_differential_writes_shorter_than_full(
        self, small_profile, small_config
    ):
        inner = make_policy(
            "Select-4:2",
            PolicyContext(profile=small_profile, config=small_config, seed=3),
        )
        wrapped = WriteTruncationWrapper(inner, rng=np.random.default_rng(0))
        epoch = 1e6
        full_scales, diff_scales = [], []
        for line in range(300):
            decision = wrapped.on_write(line, epoch)
            (full_scales if decision.full_line else diff_scales).append(
                decision.latency_scale
            )
        if full_scales and diff_scales:
            assert np.mean(diff_scales) < np.mean(full_scales)

    def test_reads_and_scrubs_untouched(self, wrapped):
        epoch = 1e6
        decision = wrapped.on_read(1, epoch)
        assert decision.mode in (ReadMode.R, ReadMode.RM)
        scrub = wrapped.on_scrub(1, epoch)
        assert scrub.metric == "M"

    def test_rejects_bad_scales(self, wrapped):
        with pytest.raises(ValueError):
            WriteTruncationWrapper(wrapped.inner, floor_scale=0.9, mean_scale=0.5)


class TestEngineIntegration:
    def test_truncation_never_slows_execution(self, small_profile):
        config = MemoryConfig(total_lines=1 << 16, num_banks=4)
        trace = generate_trace(small_profile, 150_000, seed=6)
        plain = simulate(
            trace,
            make_policy(
                "Ideal", PolicyContext(profile=small_profile, config=config, seed=1)
            ),
            config,
        )
        wrapped = WriteTruncationWrapper(
            make_policy(
                "Ideal", PolicyContext(profile=small_profile, config=config, seed=1)
            ),
            rng=np.random.default_rng(1),
        )
        truncated = simulate(trace, wrapped, config)
        assert truncated.execution_time_ns <= plain.execution_time_ns + 1e-6
        assert wrapped.truncated_writes > 0

    def test_energy_unchanged_by_truncation(self, small_profile):
        # Truncation shortens the *latency*, not the programmed cells.
        config = MemoryConfig(
            total_lines=1 << 16, num_banks=4, cancel_threshold=0.0
        )
        trace = generate_trace(small_profile, 100_000, seed=6)
        plain = simulate(
            trace,
            make_policy(
                "Ideal", PolicyContext(profile=small_profile, config=config, seed=1)
            ),
            config,
        )
        wrapped = WriteTruncationWrapper(
            make_policy(
                "Ideal", PolicyContext(profile=small_profile, config=config, seed=1)
            ),
            rng=np.random.default_rng(1),
        )
        truncated = simulate(trace, wrapped, config)
        assert truncated.dynamic_energy_pj == pytest.approx(
            plain.dynamic_energy_pj
        )
