"""Unit tests for EDAP and lifetime metrics."""

import pytest

from repro.memsim.stats import RunStats
from repro.metrics.edap import compute_edap
from repro.metrics.lifetime import lifetime_ratios, wear_breakdown


def _stats(scheme, exec_ns, energy_pj, cell_writes):
    stats = RunStats(scheme=scheme, workload="w")
    stats.execution_time_ns = exec_ns
    stats.energy.by_category["write"] = energy_pj
    stats.wear.add_cells("demand", cell_writes)
    return stats


@pytest.fixture
def sweep():
    return {
        "Ideal": _stats("Ideal", 1e6, 1e6, 1000),
        "TLC": _stats("TLC", 1e6, 1e6, 1200),
        "Scrubbing": _stats("Scrubbing", 1.2e6, 1.2e6, 1150),
        "Select-4:2": _stats("Select-4:2", 1.03e6, 0.7e6, 700),
    }


class TestEdap:
    def test_reference_is_unity(self, sweep):
        entries = compute_edap(sweep, reference="TLC")
        assert entries["TLC"].edap == pytest.approx(1.0)

    def test_select_beats_tlc(self, sweep):
        entries = compute_edap(sweep, reference="TLC")
        select = entries["Select-4:2"]
        # Better energy AND better area than TLC.
        assert select.edap < 1.0
        assert select.area < 1.0
        assert select.improvement_over_reference() > 0

    def test_components_multiply(self, sweep):
        entry = compute_edap(sweep, reference="TLC")["Scrubbing"]
        assert entry.edap == pytest.approx(
            entry.delay * entry.energy * entry.area
        )

    def test_system_energy_needs_lines(self, sweep):
        with pytest.raises(ValueError):
            compute_edap(sweep, reference="TLC", system_energy=True)

    def test_system_energy_changes_result(self, sweep):
        dynamic = compute_edap(sweep, reference="TLC")
        system = compute_edap(
            sweep, reference="TLC", system_energy=True, total_lines=1 << 24
        )
        # Select's dynamic energy advantage shrinks once background power
        # (proportional to runtime, not activity) is included.
        assert (
            system["Select-4:2"].energy > dynamic["Select-4:2"].energy
        )

    def test_missing_reference_raises(self, sweep):
        with pytest.raises(KeyError):
            compute_edap(sweep, reference="Missing")

    def test_unknown_scheme_area_raises(self, sweep):
        sweep["Mystery"] = _stats("Mystery", 1e6, 1e6, 100)
        with pytest.raises(KeyError):
            compute_edap(sweep, reference="TLC")


class TestLifetime:
    def test_ratios(self, sweep):
        ratios = lifetime_ratios(sweep)
        assert ratios["Ideal"] == pytest.approx(1.0)
        assert ratios["Select-4:2"] == pytest.approx(1000 / 700)
        assert ratios["Scrubbing"] < 1.0

    def test_missing_baseline_raises(self, sweep):
        with pytest.raises(KeyError):
            lifetime_ratios(sweep, baseline="Nope")

    def test_zero_writes_infinite(self, sweep):
        sweep["NoWrites"] = RunStats(scheme="NoWrites", workload="w")
        sweep["NoWrites"].execution_time_ns = 1.0
        ratios = lifetime_ratios(sweep)
        assert ratios["NoWrites"] == float("inf")

    def test_wear_breakdown_fractions(self):
        stats = RunStats(scheme="x", workload="w")
        stats.wear.add_cells("demand", 300)
        stats.wear.add_cells("scrub", 100)
        breakdown = wear_breakdown(stats)
        assert breakdown["demand"] == pytest.approx(0.75)
        assert sum(breakdown.values()) == pytest.approx(1.0)

    def test_wear_breakdown_empty(self):
        assert wear_breakdown(RunStats(scheme="x", workload="w")) == {}
