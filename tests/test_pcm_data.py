"""Unit + property tests for byte <-> symbol <-> level conversions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pcm.data import (
    bytes_to_levels,
    bytes_to_symbols,
    count_bit_errors,
    levels_to_bytes,
    levels_to_symbols,
    symbol_bit_errors,
    symbols_to_bytes,
    symbols_to_levels,
)


class TestSymbols:
    def test_one_byte_msb_first(self):
        assert list(bytes_to_symbols(b"\xe4")) == [3, 2, 1, 0]

    def test_symbols_roundtrip_bytes(self):
        data = bytes(range(256))
        assert symbols_to_bytes(bytes_to_symbols(data)) == data

    def test_rejects_partial_byte(self):
        with pytest.raises(ValueError):
            symbols_to_bytes(np.asarray([1, 2, 3]))

    def test_rejects_out_of_range_symbols(self):
        with pytest.raises(ValueError):
            symbols_to_bytes(np.asarray([0, 1, 2, 4]))

    @given(st.binary(min_size=0, max_size=128))
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_property(self, data):
        assert symbols_to_bytes(bytes_to_symbols(data)) == data


class TestLevels:
    def test_gray_map(self):
        assert list(symbols_to_levels(np.asarray([0b01, 0b11, 0b10, 0b00]))) == [
            0,
            1,
            2,
            3,
        ]

    def test_levels_roundtrip(self):
        symbols = np.arange(4)
        assert list(levels_to_symbols(symbols_to_levels(symbols))) == list(symbols)

    def test_bytes_to_levels_length(self):
        levels = bytes_to_levels(b"\x00" * 64)
        assert levels.shape == (256,)

    def test_bytes_levels_roundtrip(self):
        data = bytes(range(64))
        assert levels_to_bytes(bytes_to_levels(data)) == data

    @given(st.binary(min_size=64, max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_line_roundtrip_property(self, data):
        assert levels_to_bytes(bytes_to_levels(data)) == data


class TestBitErrors:
    def test_no_errors(self):
        levels = bytes_to_levels(b"\xaa" * 8)
        assert count_bit_errors(levels, levels) == 0

    def test_single_state_drift_is_one_bit(self):
        stored = np.asarray([0, 1, 2, 1])
        sensed = stored.copy()
        sensed[2] = 3  # one-state drift
        assert count_bit_errors(stored, sensed) == 1

    def test_two_state_jump_costs_two_bits(self):
        stored = np.asarray([0])
        sensed = np.asarray([2])
        assert count_bit_errors(stored, sensed) == 2

    def test_per_cell_breakdown(self):
        stored = np.asarray([0, 1, 2, 3])
        sensed = np.asarray([1, 1, 3, 3])
        errors = symbol_bit_errors(stored, sensed)
        assert list(errors) == [1, 0, 1, 0]

    @given(st.lists(st.integers(0, 3), min_size=1, max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_errors_bounded_by_two_per_cell(self, levels):
        stored = np.asarray(levels)
        sensed = (stored + 1) % 4
        per_cell = symbol_bit_errors(stored, sensed)
        assert per_cell.max() <= 2
        assert per_cell.min() >= 1  # a level change flips at least one bit
