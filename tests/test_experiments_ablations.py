"""Tests for the reproduction's own design-choice ablations."""

import pytest

from repro.experiments.ablations import (
    ablation_conversion_throttle,
    ablation_scrub_contention,
    ablation_write_cancellation,
)

FAST = dict(target_requests=3_000)


class TestScrubContention:
    @pytest.fixture(scope="class")
    def result(self):
        return ablation_scrub_contention(workloads=("mcf", "gcc"), **FAST)

    def test_contention_costs_performance(self, result):
        geomean = result.rows[-1]
        assert geomean[1] > geomean[2]

    def test_free_scrub_near_ideal(self, result):
        geomean = result.rows[-1]
        assert geomean[2] < 1.05


class TestWriteCancellation:
    def test_cancellation_reduces_read_latency(self):
        result = ablation_write_cancellation(workloads=("lbm",), **FAST)
        row = result.rows[0]
        with_cancel, without = row[1], row[2]
        assert with_cancel <= without
        assert row[3] > 0  # some writes actually got cancelled


class TestConversionThrottle:
    @pytest.fixture(scope="class")
    def result(self):
        return ablation_conversion_throttle(target_requests=4_000)

    def _by_variant(self, result):
        return {row[0]: row for row in result.rows}

    def test_always_converting_is_fastest(self, result):
        rows = self._by_variant(result)
        assert rows["always convert (T=100)"][1] <= rows["never convert (T=0)"][1]

    def test_never_converting_preserves_lifetime(self, result):
        rows = self._by_variant(result)
        assert rows["never convert (T=0)"][3] >= rows["always convert (T=100)"][3]

    def test_adaptive_between_extremes_on_conversions(self, result):
        rows = self._by_variant(result)
        adaptive = rows["adaptive (paper)"][4]
        always = rows["always convert (T=100)"][4]
        never = rows["never convert (T=0)"][4]
        assert never == 0
        assert 0 < adaptive <= always


class TestWriteTruncationAblation:
    def test_truncation_helps_or_neutral(self):
        from repro.experiments.ablations import ablation_write_truncation

        result = ablation_write_truncation(
            workloads=("lbm",), **FAST
        )
        row = result.rows[0]
        assert row[2] <= row[1] + 0.02  # truncated never meaningfully slower
        assert row[3] > 0
