"""Property tests for the exploration engine (stdlib ``random`` only).

Seed-parameterized random spaces and objective vectors check the
invariants the differential test cannot: mutual non-dominance of every
frontier, a dominating survivor for every prune at its own rung,
frontier invariance across ``jobs`` degrees of parallelism, and
bit-identical results between in-process execution and a real
``readduo serve`` daemon resolving the same exploration.
"""

import asyncio
import random
import threading

import pytest

from repro.experiments.runner import clear_sweep_cache
from repro.explore import (
    ExploreError,
    ExploreSpace,
    LocalExploreBackend,
    ServeExploreBackend,
    dominates,
    explore,
    pareto_indices,
)
from repro.service import ExecutionService
from repro.service.client import ServeClient
from repro.service.server import ServeConfig, SimServer


@pytest.fixture(autouse=True)
def clean_memo():
    clear_sweep_cache()
    yield
    clear_sweep_cache()


# ------------------------------------------------------- pure Pareto maths


class TestParetoProperties:
    @pytest.mark.parametrize("seed", range(8))
    def test_pareto_indices_match_bruteforce_definition(self, seed):
        rng = random.Random(seed)
        vectors = [
            tuple(rng.choice((0.25, 0.5, 0.75, 1.0)) for _ in range(3))
            for _ in range(rng.randrange(1, 40))
        ]
        front = set(pareto_indices(vectors))
        for i, v in enumerate(vectors):
            dominated = any(
                dominates(w, v) for j, w in enumerate(vectors) if j != i
            )
            assert (i in front) == (not dominated)

    @pytest.mark.parametrize("seed", range(8))
    def test_frontier_is_mutually_non_dominated(self, seed):
        rng = random.Random(1000 + seed)
        vectors = [
            tuple(rng.uniform(0.0, 1.0) for _ in range(3)) for _ in range(30)
        ]
        front = pareto_indices(vectors)
        for i in front:
            for j in front:
                if i != j:
                    assert not dominates(vectors[i], vectors[j])

    def test_equal_vectors_both_survive(self):
        vectors = [(1.0, 2.0), (1.0, 2.0), (0.5, 3.0)]
        assert pareto_indices(vectors) == [0, 1, 2]
        assert not dominates((1.0, 2.0), (1.0, 2.0))

    def test_dominates_requires_equal_lengths(self):
        with pytest.raises(ValueError):
            dominates((1.0,), (1.0, 2.0))


# --------------------------------------------------- random-space fixtures

SCHEME_POOL = ("Hybrid", "LWT-2", "LWT-4", "Select-4:1", "Select-4:2")


def _random_space(seed):
    """A small random-but-reproducible space (<= 8 candidates)."""
    rng = random.Random(seed)
    schemes = tuple(
        rng.sample(SCHEME_POOL, rng.randrange(2, 4))
    )
    eccs = tuple(sorted(rng.sample((2, 4, 8), rng.randrange(1, 3))))
    scrubs = tuple(sorted(rng.sample((8.0, 64.0, 640.0), 1)))
    return ExploreSpace(
        schemes=schemes,
        ecc_strengths=eccs,
        scrub_intervals_s=scrubs,
        workload=rng.choice(("mcf", "gcc")),
        seed=rng.randrange(1, 100),
    )


def _explore_local(space, cache, jobs=1, budget=600, base_budget=300):
    with ExecutionService(jobs=jobs, cache=str(cache)) as service:
        return explore(
            space,
            budget,
            base_budget=base_budget,
            backend=LocalExploreBackend(service),
        )


# ------------------------------------------------------ engine invariants


class TestExploreInvariants:
    @pytest.mark.parametrize("seed", [11, 23, 37])
    def test_frontier_mutually_non_dominated(self, seed, tmp_path):
        result = _explore_local(_random_space(seed), tmp_path)
        vectors = [e.objectives for e in result.frontier]
        assert vectors
        for i, a in enumerate(vectors):
            for j, b in enumerate(vectors):
                if i != j:
                    assert not dominates(a, b)

    @pytest.mark.parametrize("seed", [11, 23, 37])
    def test_every_prune_has_a_dominating_survivor(self, seed, tmp_path):
        result = _explore_local(_random_space(seed), tmp_path)
        for p in result.pruned:
            rung = result.rungs[p.rung]
            assert rung.budget == p.budget
            assert p.candidate.cid in rung.scores
            assert dominates(rung.scores[p.dominated_by], p.objectives)
            # The dominator itself survived that rung.
            promoted = {
                cid
                for cid, vec in rung.scores.items()
                if not any(
                    dominates(other, vec)
                    for other_cid, other in rung.scores.items()
                    if other_cid != cid
                )
            }
            assert p.dominated_by in promoted

    @pytest.mark.parametrize("seed", [11, 23, 37])
    def test_accounting_partitions_the_space(self, seed, tmp_path):
        space = _random_space(seed)
        result = _explore_local(space, tmp_path)
        frontier = set(result.frontier_ids)
        pruned = {p.candidate.cid for p in result.pruned}
        assert frontier | pruned == {c.cid for c in space.candidates()}
        assert not frontier & pruned
        # Budgets ladder ends exactly at the requested budget.
        assert result.budgets[-1] == 600


class TestTopologyInvariance:
    @pytest.mark.parametrize("seed", [11, 23])
    def test_frontier_invariant_across_jobs(self, seed, tmp_path):
        space = _random_space(seed)
        digests = []
        for jobs in (1, 2, 4):
            clear_sweep_cache()
            result = _explore_local(
                space, tmp_path / f"jobs{jobs}", jobs=jobs
            )
            digests.append(result.frontier_digest())
        assert len(set(digests)) == 1

    def test_explore_via_serve_matches_local(self, tmp_path):
        space = _random_space(23)
        local = _explore_local(space, tmp_path / "local")
        clear_sweep_cache()

        loop = asyncio.new_event_loop()
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()
        holder = {}

        async def boot():
            server = SimServer(
                ServeConfig(
                    port=0,
                    cache=str(tmp_path / "serve"),
                    max_pending=64,
                    max_inflight_per_client=64,
                )
            )
            await server.start()
            holder["server"] = server

        try:
            asyncio.run_coroutine_threadsafe(boot(), loop).result(timeout=60)
            client = ServeClient(
                port=holder["server"].port, client_id="explore-test"
            )
            served = explore(
                space,
                600,
                base_budget=300,
                backend=ServeExploreBackend(client),
            )
        finally:
            if "server" in holder:
                asyncio.run_coroutine_threadsafe(
                    holder["server"].stop(), loop
                ).result(timeout=60)
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=10)
            loop.close()

        assert served.frontier_digest() == local.frontier_digest()
        assert served.frontier_ids == local.frontier_ids
        # Full RunStats round-trip the daemon's store bit-identically.
        assert [e.stats.to_dict() for e in served.frontier] == [
            e.stats.to_dict() for e in local.frontier
        ]


class TestSpaceProperties:
    @pytest.mark.parametrize("seed", [11, 23, 37])
    def test_space_roundtrips_through_dict(self, seed):
        space = _random_space(seed)
        assert ExploreSpace.from_dict(space.to_dict()) == space

    def test_family_expansion_enumerates_cross_product(self):
        space = ExploreSpace.from_dict(
            {
                "schemes": ["Hybrid"],
                "families": {"Select-<k>:<s>": {"k": [2, 4], "s": [1, 2]}},
            }
        )
        assert space.schemes == (
            "Hybrid",
            "Select-2:1",
            "Select-2:2",
            "Select-4:1",
            "Select-4:2",
        )

    @pytest.mark.parametrize("seed", [11, 23])
    def test_candidate_order_is_deterministic(self, seed):
        space = _random_space(seed)
        assert [c.cid for c in space.candidates()] == [
            c.cid for c in _random_space(seed).candidates()
        ]


class TestSpaceValidation:
    """Every malformed space document is an ExploreError, not a crash."""

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            ({"schemes": ()}, "no schemes"),
            ({"schemes": ("NoSuchScheme",)}, "unknown schemes"),
            ({"ecc_strengths": ("eight",)}, "must be integers"),
            ({"ecc_strengths": (True,)}, "must be integers"),
            ({"ecc_strengths": (-1,)}, "must be >= 0"),
            ({"ecc_strengths": ()}, "no ECC strengths"),
            ({"scrub_intervals_s": ("soon",)}, "must be numbers"),
            ({"scrub_intervals_s": (0.0,)}, "must be positive"),
            ({"scrub_intervals_s": ()}, "no scrub intervals"),
            ({"configs": (("bad|label", {}),)}, "invalid config label"),
            ({"configs": (("a", {}), ("a", {}))}, "duplicate config label"),
            ({"configs": (("a", "not-a-mapping"),)}, "must be a mapping"),
            ({"configs": ("oops",)}, r"\(label, overrides\) pairs"),
            ({"configs": (("a", {"no_such_field": 1}),)}, "config 'a'"),
            ({"configs": ()}, "no configs"),
            ({"workload": "quake"}, "unknown workload"),
            ({"seed": "42"}, "seed must be an int"),
            ({"seed": True}, "seed must be an int"),
        ],
    )
    def test_invalid_spaces_rejected(self, kwargs, match):
        with pytest.raises(ExploreError, match=match):
            ExploreSpace(**kwargs)

    @pytest.mark.parametrize(
        "document,match",
        [
            ("not-a-mapping", "must be a mapping"),
            ({"budget": 100}, "unknown space keys"),
            ({"families": ["Select-<k>:<s>"]}, "families must be a mapping"),
            ({"families": {"Select-<k>:<s>": [2]}}, "values must be a mapping"),
            ({"families": {"No-<x>": {"x": [1]}}}, "cannot enumerate"),
            ({"configs": "base"}, "configs must be a mapping"),
        ],
    )
    def test_invalid_documents_rejected(self, document, match):
        with pytest.raises(ExploreError, match=match):
            ExploreSpace.from_dict(document)

    def test_configs_list_form_autolabels(self):
        space = ExploreSpace.from_dict(
            {"configs": [{}, {"num_cores": 2}]}
        )
        assert [label for label, _ in space.configs] == ["cfg0", "cfg1"]

    def test_duplicate_inputs_dedup(self):
        space = ExploreSpace(
            schemes=("Hybrid", "hybrid"),
            ecc_strengths=(8, 8, 4),
            scrub_intervals_s=(640.0, 640, 8.0),
        )
        assert space.schemes == ("Hybrid",)
        assert space.ecc_strengths == (8, 4)
        assert space.scrub_intervals_s == (640.0, 8.0)

    def test_space_file_errors(self, tmp_path):
        with pytest.raises(ExploreError, match="cannot read"):
            ExploreSpace.from_file(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(ExploreError, match="invalid JSON"):
            ExploreSpace.from_file(bad)
