"""Tests for the run-provenance ledger (repro.obs.ledger).

Covers the ISSUE-mandated behaviours: one record per planned run unit
with resolution tier and provenance, schema-valid JSONL, determinism
modulo timing, and the observes-never-perturbs contract (identical
RunStats and unchanged sweep content with a ledger attached).
"""

import json

import pytest

from repro.core.registry import make_policy
from repro.core.schemes import PolicyContext
from repro.experiments.cache import SweepCache
from repro.experiments.planner import build_plan, execute_plan
from repro.experiments.runner import clear_sweep_cache
from repro.experiments.spec import SimSpec
from repro.memsim.config import MemoryConfig
from repro.memsim.engine import simulate
from repro.obs import MetricsRegistry, Telemetry, Tracer
from repro.obs.ledger import LEDGER_RECORD_KIND, RunLedger
from repro.obs.schema import load_schema, validate_jsonl
from repro.traces.generator import generate_trace
from repro.traces.spec import instructions_for_requests, workload

SMALL = SimSpec(
    schemes=("Ideal", "Hybrid"),
    workloads=("gcc", "mcf"),
    target_requests=1_000,
)

#: Record fields that legitimately vary between byte-identical runs.
TIMING_FIELDS = ("t_s", "wall_s", "pid")


@pytest.fixture(autouse=True)
def clean_memo():
    clear_sweep_cache()
    yield
    clear_sweep_cache()


def _ledger_records(path):
    return [
        json.loads(line)
        for line in path.read_text().splitlines()
        if line.strip()
    ]


def _run_with_ledger(path, jobs=1, cache=None):
    tele = Telemetry(ledger=RunLedger(path))
    plan = build_plan([SMALL])
    results = execute_plan(plan, jobs=jobs, cache=cache, telemetry=tele)
    tele.ledger.close()
    return _ledger_records(path), results


class TestRunLedger:
    def test_open_is_lazy_and_records_accumulate(self, tmp_path):
        path = tmp_path / "sub" / "ledger.jsonl"
        ledger = RunLedger(path)
        assert not path.exists()  # constructing never touches the fs
        plan = ledger.begin_plan()
        ledger.record(plan=plan, run_hash="h1", workload="mcf",
                      scheme="Hybrid", tier="simulated", engine="batch")
        ledger.close()
        # A second ledger instance appends to the same file.
        with RunLedger(path) as again:
            again.record(plan=again.begin_plan(), run_hash="h2",
                         workload="gcc", scheme="Ideal", tier="memo",
                         engine="batch")
        records = _ledger_records(path)
        assert [r["run_hash"] for r in records] == ["h1", "h2"]
        assert all(r["kind"] == LEDGER_RECORD_KIND for r in records)
        assert ledger.records_written == 1

    def test_begin_plan_indexes_from_one(self, tmp_path):
        ledger = RunLedger(tmp_path / "l.jsonl")
        assert ledger.begin_plan() == 1
        assert ledger.begin_plan() == 2


class TestExecutePlanLedger:
    def test_cold_run_records_simulated_with_provenance(self, tmp_path):
        records, _ = _run_with_ledger(tmp_path / "cold.jsonl", jobs=1)
        plan = build_plan([SMALL])
        assert len(records) == len(plan.units)
        assert [r["run_hash"] for r in records] == [u.key for u in plan.units]
        for record in records:
            assert record["tier"] == "simulated"
            assert record["engine"] == "batch"
            assert record["fastpath"] in ("speculated", "fallback", "no_native")
            assert record["wall_s"] > 0.0
            assert record["pid"] > 0

    def test_warm_run_records_memo_tier(self, tmp_path):
        _run_with_ledger(tmp_path / "cold.jsonl", jobs=1)
        records, _ = _run_with_ledger(tmp_path / "warm.jsonl", jobs=1)
        assert records and all(r["tier"] == "memo" for r in records)
        assert all(r["wall_s"] is None for r in records)

    def test_disk_tier_records_cached_bytes(self, tmp_path):
        cache_root = tmp_path / "cache"
        records, _ = _run_with_ledger(
            tmp_path / "cold.jsonl", jobs=1, cache=SweepCache(cache_root)
        )
        # The cold run stored granular entries; their sizes are recorded.
        assert all(r["cached_bytes"] > 0 for r in records)
        clear_sweep_cache()
        warm, _ = _run_with_ledger(
            tmp_path / "warm.jsonl", jobs=1, cache=SweepCache(cache_root)
        )
        assert all(r["tier"] == "disk" for r in warm)
        assert all(r["cached_bytes"] > 0 for r in warm)

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_schema_valid_jsonl(self, tmp_path, jobs):
        path = tmp_path / "ledger.jsonl"
        _run_with_ledger(path, jobs=jobs)
        schema = load_schema("ledger")
        assert validate_jsonl(path.read_text().splitlines(), schema) == []

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_deterministic_modulo_timing(self, tmp_path, jobs):
        first, _ = _run_with_ledger(tmp_path / "a.jsonl", jobs=jobs)
        clear_sweep_cache()
        second, _ = _run_with_ledger(tmp_path / "b.jsonl", jobs=jobs)

        def strip(records):
            return [
                {k: v for k, v in r.items() if k not in TIMING_FIELDS}
                for r in records
            ]

        assert strip(first) == strip(second)


class TestObservesNeverPerturbs:
    def test_instrumented_results_equal_uninstrumented(self, tmp_path):
        plan = build_plan([SMALL])
        plain = execute_plan(plan, jobs=1)
        clear_sweep_cache()
        tele = Telemetry(
            tracer=Tracer(),
            metrics=MetricsRegistry(),
            ledger=RunLedger(tmp_path / "l.jsonl"),
        )
        instrumented = execute_plan(build_plan([SMALL]), jobs=1, telemetry=tele)
        tele.ledger.close()
        assert plain.keys() == instrumented.keys()
        for key in plain:
            assert plain[key].to_dict() == instrumented[key].to_dict()

    def test_ledger_state_never_enters_content_hash(self, tmp_path):
        # Attaching a ledger must not move any run hash: the plan keys
        # (content identity of cached artifacts) are telemetry-blind.
        plan = build_plan([SMALL])
        tele = Telemetry(ledger=RunLedger(tmp_path / "l.jsonl"))
        execute_plan(plan, jobs=1, telemetry=tele)
        tele.ledger.close()
        assert [u.key for u in plan.units] == [
            u.key for u in build_plan([SMALL]).units
        ]


class TestExploreScope:
    """Explore provenance fields (candidate / rung / budget) on records."""

    def test_scope_stamps_explore_fields(self, tmp_path):
        path = tmp_path / "l.jsonl"
        with RunLedger(path) as ledger:
            plan = ledger.begin_plan()
            with ledger.explore_scope(
                rung=1, budget=600, candidates={"h1": "LWT-2|E8|S640|base"}
            ):
                ledger.record(plan=plan, run_hash="h1", workload="mcf",
                              scheme="LWT-2", tier="simulated", engine="batch")
                # Baseline units carry no candidate but keep rung/budget.
                ledger.record(plan=plan, run_hash="h9", workload="mcf",
                              scheme="TLC", tier="simulated", engine="batch")
            ledger.record(plan=plan, run_hash="h2", workload="mcf",
                          scheme="TLC", tier="memo", engine="batch")
        inside, baseline, outside = _ledger_records(path)
        assert inside["candidate"] == "LWT-2|E8|S640|base"
        assert inside["rung"] == 1 and inside["budget"] == 600
        assert baseline["candidate"] is None
        assert baseline["rung"] == 1 and baseline["budget"] == 600
        # Outside a scope the fields are absent (not null), so ledgers
        # written before the explorer existed stay shape-identical.
        assert "candidate" not in outside and "rung" not in outside
        schema = load_schema("ledger")
        assert validate_jsonl(path.read_text().splitlines(), schema) == []

    def test_scope_does_not_nest(self, tmp_path):
        ledger = RunLedger(tmp_path / "l.jsonl")
        with ledger.explore_scope(rung=0, budget=100, candidates={}):
            with pytest.raises(RuntimeError):
                with ledger.explore_scope(rung=1, budget=200, candidates={}):
                    pass  # pragma: no cover

    def test_real_exploration_writes_schema_valid_provenance(self, tmp_path):
        from repro.explore import ExploreSpace, LocalExploreBackend, explore
        from repro.service import ExecutionService

        path = tmp_path / "explore.jsonl"
        tele = Telemetry(ledger=RunLedger(path))
        space = ExploreSpace(
            schemes=("LWT-2", "Select-4:2"), workload="gcc", seed=5
        )
        with ExecutionService(
            jobs=1, cache=str(tmp_path / "cache"), telemetry=tele
        ) as service:
            result = explore(
                space,
                400,
                base_budget=200,
                backend=LocalExploreBackend(service),
                telemetry=tele,
            )
        tele.ledger.close()
        records = _ledger_records(path)
        schema = load_schema("ledger")
        assert validate_jsonl(path.read_text().splitlines(), schema) == []
        assert all("rung" in r and "budget" in r for r in records)
        assert {r["budget"] for r in records} == set(result.budgets)
        candidate_ids = {r["candidate"] for r in records} - {None}
        assert candidate_ids <= {c.cid for c in space.candidates()}
        baseline = [r for r in records if r["candidate"] is None]
        assert {r["scheme"] for r in baseline} == {"TLC", "Ideal"}


class TestFastpathCounters:
    """fastpath.* counters are execution-layer, one per simulated unit.

    They deliberately do NOT live in the engine: engine-level telemetry
    must stay bit-identical between the batch kernel and the event
    oracle (tests/test_batch_equivalence.py), and only the batch kernel
    speculates.
    """

    def _run(self, scheme, jobs=1):
        metrics = MetricsRegistry()
        spec = SimSpec(
            schemes=(scheme,), workloads=("mcf",), target_requests=1_000
        )
        execute_plan(
            build_plan([spec]), jobs=jobs, telemetry=Telemetry(metrics=metrics)
        )
        return metrics.to_dict()["counters"]

    def test_speculated_counter_increments(self):
        counters = self._run("Hybrid")  # known-eligible scenario
        assert counters["fastpath.speculated"] == 1
        assert "fastpath.fallback" not in counters

    def test_fallback_counter_increments(self):
        counters = self._run("LWT-4")  # scheme without a native kernel path
        assert counters["fastpath.fallback"] == 1
        assert "fastpath.speculated" not in counters

    def test_counters_flow_back_from_worker_processes(self):
        counters = self._run("Hybrid", jobs=2)
        assert counters["fastpath.speculated"] == 1

    def test_engine_metrics_stay_fastpath_free(self):
        # Direct engine runs never emit fastpath counters, whatever the
        # engine — that is the equivalence contract.
        config = MemoryConfig()
        profile = workload("mcf")
        instructions = instructions_for_requests(profile, 1_000, config.num_cores)
        trace = generate_trace(
            profile,
            instructions_per_core=instructions,
            num_cores=config.num_cores,
            seed=42,
        )
        for engine in ("batch", "event"):
            metrics = MetricsRegistry()
            policy = make_policy(
                "Hybrid", PolicyContext(profile=profile, config=config, seed=42)
            )
            simulate(
                trace, policy, config,
                telemetry=Telemetry(metrics=metrics), engine=engine,
            )
            counters = metrics.to_dict()["counters"]
            assert not any(k.startswith("fastpath.") for k in counters)
