"""Tests for the fast (non-sweep) figure drivers."""

import pytest

from repro.experiments import EXPERIMENTS


class TestFigure1:
    @pytest.fixture(scope="class")
    def result(self):
        return EXPERIMENTS["figure1"](num_lines=256)

    def test_four_levels(self, result):
        assert len(result.rows) == 4

    def test_means_shift_upward(self, result):
        i0 = result.headers.index("mean log10R @t0")
        it = result.headers.index("mean log10R @t")
        for row in result.rows[:3]:  # drifting levels
            assert row[it] > row[i0]

    def test_top_level_never_drifts_into_error(self, result):
        row = result.rows[3]
        assert row[result.headers.index("drifted (MC)")] == 0.0

    def test_mc_matches_analytic(self, result):
        imc = result.headers.index("drifted (MC)")
        ian = result.headers.index("drifted (analytic)")
        for row in result.rows:
            assert row[imc] == pytest.approx(row[ian], abs=0.01)


class TestFigure2:
    @pytest.fixture(scope="class")
    def result(self):
        return EXPERIMENTS["figure2"]()

    def test_r_metric_monotone(self, result):
        r = [row[3] for row in result.rows[:4]]
        assert r == sorted(r)

    def test_separation_row_present(self, result):
        sep = result.row_by("level", "separation")
        assert sep[4] > 1.0  # M separation


class TestFigure5:
    def test_walkthrough_matches_paper(self):
        result = EXPERIMENTS["figure5"]()
        decisions = {row[0]: row[3] for row in result.rows}
        assert decisions["R1 (read, sub-interval 2)"] == "M-sensing"
        assert decisions["read @sub-interval 1"] == "R-sensing"
        # scrub3 leaves the vector empty.
        assert result.rows[-1][1] == "0000"


class TestFigure6:
    @pytest.fixture(scope="class")
    def result(self):
        return EXPERIMENTS["figure6"](num_lines=128)

    def test_differential_margin_smaller(self, result):
        margin = {row[0]: row[2] for row in result.rows}
        assert margin["differential write"] < margin["full-line write"]

    def test_differential_more_errors_later(self, result):
        errors = {row[0]: row[3] for row in result.rows}
        assert errors["differential write"] > errors["full-line write"]

    def test_same_prewrite_error_rate(self, result):
        pre = [row[1] for row in result.rows]
        assert pre[0] == pytest.approx(pre[1])
