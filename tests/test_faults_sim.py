"""End-to-end fault injection: determinism, cache identity, serialization.

The contract under test is the ISSUE's reproducibility requirement: a
fault schedule is a pure function of the spec, so the same ``FaultSpec``
seed yields byte-identical fault schedules and ``RunStats`` fault
counters across ``jobs ∈ {1, 2, 4}`` and across cold/warm cache replays
— and a spec *without* faults hashes exactly as it did before the
subsystem existed, keeping existing warm caches valid.
"""

import dataclasses

import pytest

from repro.experiments.cache import SweepCache
from repro.experiments.parallel import simulate_unit
from repro.experiments.runner import SweepSettings, clear_sweep_cache, run_sweep
from repro.faults import FaultSpec
from repro.memsim.stats import RunStats


@pytest.fixture(autouse=True)
def clean_cache():
    clear_sweep_cache()
    yield
    clear_sweep_cache()


FAULTS = FaultSpec(
    stuck_line_rate=0.08, read_noise_rate=0.01, write_fail_rate=0.05, seed=3
)

FAULTY = SweepSettings(
    schemes=("Ideal", "Hybrid"),
    workloads=("gcc",),
    target_requests=1_200,
    faults=FAULTS,
)

FAULT_FREE = SweepSettings(
    schemes=FAULTY.schemes,
    workloads=FAULTY.workloads,
    target_requests=FAULTY.target_requests,
)


def _flat(grid):
    return [
        (w, s, stats.to_dict())
        for w, per_scheme in grid.items()
        for s, stats in per_scheme.items()
    ]


class TestHashCompatibility:
    def test_fault_free_spec_hashes_as_before_faults_existed(self):
        # faults=None and an all-zero FaultSpec are the same identity, so
        # warm caches built before the subsystem stay valid.
        zeroed = dataclasses.replace(FAULT_FREE, faults=FaultSpec())
        assert zeroed.faults is None
        assert zeroed.content_hash() == FAULT_FREE.content_hash()
        assert "faults" not in FAULT_FREE.to_dict()

    def test_enabled_faults_change_every_hash(self):
        assert FAULTY.content_hash() != FAULT_FREE.content_hash()
        assert FAULTY.run_hash("gcc", "Hybrid") != FAULT_FREE.run_hash(
            "gcc", "Hybrid"
        )

    def test_fault_seed_is_part_of_the_identity(self):
        reseeded = dataclasses.replace(
            FAULTY, faults=dataclasses.replace(FAULTS, seed=FAULTS.seed + 1)
        )
        assert reseeded.content_hash() != FAULTY.content_hash()

    def test_faults_roundtrip_through_spec_dict(self):
        assert SweepSettings.from_dict(FAULTY.to_dict()) == FAULTY


class TestInjectorIdentity:
    def test_full_spec_and_subspec_build_the_same_injector(self):
        # run_hash is idempotent under run_subspec, so a worker handed
        # the sweep spec and one handed the sub-spec inject identically.
        sub = FAULTY.run_subspec("gcc", "Hybrid")
        a = FAULTY.fault_injector("gcc", "Hybrid")
        b = sub.fault_injector("gcc", "Hybrid")
        trace_a = [a.read_errors(line) for line in range(128)]
        trace_b = [b.read_errors(line) for line in range(128)]
        assert trace_a == trace_b

    def test_fault_free_spec_has_no_injector(self):
        assert FAULT_FREE.fault_injector("gcc", "Hybrid") is None


class TestFaultedRuns:
    def test_counters_fire_and_serialize(self):
        stats = simulate_unit(FAULTY, "gcc", "Hybrid")
        fc = stats.fault_counters
        assert fc.injected > 0
        assert fc.corrected + fc.detected_uncorrectable + fc.silent > 0
        payload = stats.to_dict()
        assert payload["faults"] == fc.as_dict()
        assert RunStats.from_dict(payload).fault_counters == fc

    def test_fault_free_run_keeps_zero_counters_out_of_the_payload(self):
        stats = simulate_unit(FAULT_FREE, "gcc", "Hybrid")
        assert not stats.fault_counters
        assert "faults" not in stats.to_dict()

    def test_equality_ignores_fault_counters(self):
        # Like telemetry, the counters are observability — not part of a
        # run's value identity.
        stats = simulate_unit(FAULTY, "gcc", "Hybrid")
        from repro.faults import FaultCounters

        stripped = dataclasses.replace(stats, fault_counters=FaultCounters())
        assert stripped == stats

    def test_faults_perturb_the_simulation(self):
        faulted = simulate_unit(FAULTY, "gcc", "Hybrid")
        clean = simulate_unit(FAULT_FREE, "gcc", "Hybrid")
        assert faulted.to_dict() != clean.to_dict()


class TestDeterminism:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_fault_schedule_is_jobs_invariant(self, jobs):
        serial = run_sweep(FAULTY, jobs=1)
        flat_serial = _flat(serial)
        clear_sweep_cache()
        parallel = run_sweep(FAULTY, jobs=jobs)
        assert _flat(parallel) == flat_serial

    def test_repeated_serial_runs_are_bit_identical(self):
        first = _flat(run_sweep(FAULTY, jobs=1))
        clear_sweep_cache()
        second = _flat(run_sweep(FAULTY, jobs=1))
        assert first == second

    def test_cache_replay_preserves_fault_counters(self, tmp_path):
        grid = run_sweep(FAULTY, jobs=1, cache=SweepCache(tmp_path))
        clear_sweep_cache()
        reloaded = run_sweep(FAULTY, jobs=1, cache=SweepCache(tmp_path))
        assert _flat(reloaded) == _flat(grid)
        fc = reloaded["gcc"]["Hybrid"].fault_counters
        assert fc == grid["gcc"]["Hybrid"].fault_counters
        assert fc.injected > 0

    def test_warm_fault_cache_skips_simulation(self, tmp_path, monkeypatch):
        run_sweep(FAULTY, jobs=1, cache=SweepCache(tmp_path))
        clear_sweep_cache()

        import repro.experiments.planner as planner_mod

        def explode(*_args, **_kwargs):
            raise AssertionError("warm cache must not simulate")

        monkeypatch.setattr(planner_mod, "simulate_unit", explode)
        monkeypatch.setattr(planner_mod, "run_units_parallel", explode)
        grid = run_sweep(FAULTY, jobs=1, cache=SweepCache(tmp_path))
        assert grid["gcc"]["Hybrid"].fault_counters.injected > 0
