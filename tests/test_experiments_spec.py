"""Tests for SimSpec (repro.experiments.spec)."""

import dataclasses
import json

import pytest

from repro.experiments.cache import settings_key
from repro.experiments.runner import SweepSettings, clear_sweep_cache, run_sweep
from repro.experiments.spec import ALL_SCHEMES, SimSpec, SpecError
from repro.memsim.config import DEFAULT_EPOCH_S, MemoryConfig
from repro.traces.spec import workload, workload_names

SMALL = SimSpec(
    schemes=("Ideal", "Hybrid", "LWT-4"),
    workloads=("gcc",),
    target_requests=900,
)


class TestConstruction:
    def test_defaults(self):
        spec = SimSpec()
        assert spec.schemes == ALL_SCHEMES
        assert spec.workloads == ()
        assert spec.target_requests == 30_000
        assert spec.seed == 42
        assert spec.epoch_s == DEFAULT_EPOCH_S
        assert spec.config == MemoryConfig()

    def test_sweepsettings_is_simspec(self):
        # The historical name is an alias for the one spec type.
        assert SweepSettings is SimSpec

    def test_schemes_are_canonicalized(self):
        spec = SimSpec(schemes=("readduo-lwt-4", "HYBRID", "select-4:2"))
        assert spec.schemes == ("LWT-4", "Hybrid", "Select-4:2")

    def test_schemes_deduplicate_after_canonicalization(self):
        spec = SimSpec(schemes=("LWT-4", "readduo-lwt-4", "lwt-4", "Ideal"))
        assert spec.schemes == ("LWT-4", "Ideal")

    def test_alias_spelling_is_same_spec(self):
        canonical = SimSpec(schemes=("LWT-4",), workloads=("gcc",))
        aliased = SimSpec(schemes=("readduo-lwt-4",), workloads=("gcc",))
        assert canonical == aliased
        assert canonical.content_hash() == aliased.content_hash()

    def test_unknown_scheme_rejected_upfront(self):
        with pytest.raises(SpecError, match="unknown schemes: Bogus"):
            SimSpec(schemes=("Ideal", "Bogus"))

    def test_unknown_workload_rejected_upfront(self):
        with pytest.raises(SpecError, match="unknown workloads: nope"):
            SimSpec(workloads=("nope",))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"target_requests": 0},
            {"target_requests": 1.5},
            {"target_requests": True},
            {"seed": "42"},
            {"epoch_s": float("nan")},
            {"epoch_s": float("inf")},
            {"epoch_s": "soon"},
            {"config": 7},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(SpecError):
            SimSpec(**kwargs)

    def test_config_accepts_partial_mapping(self):
        spec = SimSpec(config={"num_banks": 4, "timing": {"write_ns": 500.0}})
        assert spec.config.num_banks == 4
        assert spec.config.timing.write_ns == 500.0
        # Unspecified fields keep their defaults.
        assert spec.config.num_cores == MemoryConfig().num_cores
        assert spec.config.timing.r_read_ns == MemoryConfig().timing.r_read_ns

    def test_config_unknown_keys_rejected(self):
        with pytest.raises(SpecError, match="unknown config keys: warp_drive"):
            SimSpec(config={"warp_drive": 9})
        with pytest.raises(SpecError, match="unknown config.timing keys"):
            SimSpec(config={"timing": {"warp_ns": 1.0}})

    def test_effective_workloads_and_quick(self):
        assert SimSpec().effective_workloads() == workload_names()
        assert SMALL.effective_workloads() == ("gcc",)
        quick = SMALL.quick(300)
        assert quick.target_requests == 300
        assert quick.schemes == SMALL.schemes


class TestRoundTrip:
    def test_dict_round_trip_is_lossless(self):
        spec = SimSpec(
            schemes=("Hybrid", "LWT-4"),
            workloads=("gcc", "mcf"),
            target_requests=1_234,
            seed=7,
            config=MemoryConfig(num_banks=8),
            epoch_s=123_456.5,
        )
        clone = SimSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.content_hash() == spec.content_hash()

    def test_json_file_round_trip(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(SMALL.to_dict()))
        assert SimSpec.from_file(path) == SMALL

    def test_toml_file_round_trip(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "spec.toml"
        path.write_text(
            'schemes = ["Ideal", "Hybrid", "readduo-lwt-4"]\n'
            'workloads = ["gcc"]\n'
            "target_requests = 900\n"
            "seed = 42\n"
        )
        assert SimSpec.from_file(path) == SMALL

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(SpecError, match="unknown spec keys: shcemes"):
            SimSpec.from_dict({"shcemes": ["Ideal"]})

    def test_from_dict_rejects_scalar_scheme_list(self):
        with pytest.raises(SpecError, match="schemes must be a list"):
            SimSpec.from_dict({"schemes": "Ideal"})

    def test_from_file_missing_file(self, tmp_path):
        with pytest.raises(SpecError, match="cannot read spec file"):
            SimSpec.from_file(tmp_path / "missing.json")

    def test_from_file_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(SpecError, match="invalid JSON"):
            SimSpec.from_file(path)


class TestContentHash:
    def test_hash_is_stable_across_instances(self):
        again = SimSpec(
            schemes=("Ideal", "Hybrid", "LWT-4"),
            workloads=("gcc",),
            target_requests=900,
        )
        assert again.content_hash() == SMALL.content_hash()

    def test_every_field_is_part_of_the_hash(self):
        base = SMALL.content_hash()
        assert SMALL.quick(300).content_hash() != base
        assert dataclasses.replace(SMALL, seed=7).content_hash() != base
        assert dataclasses.replace(SMALL, epoch_s=1.0).content_hash() != base
        assert (
            dataclasses.replace(SMALL, workloads=("mcf",)).content_hash() != base
        )
        assert (
            dataclasses.replace(
                SMALL, config=MemoryConfig(num_banks=8)
            ).content_hash()
            != base
        )

    def test_default_workloads_hash_like_explicit_full_list(self):
        implicit = SimSpec(schemes=("Ideal",))
        explicit = SimSpec(schemes=("Ideal",), workloads=workload_names())
        assert implicit.content_hash() == explicit.content_hash()

    def test_settings_key_is_exactly_content_hash(self):
        assert settings_key(SMALL) == SMALL.content_hash()


class TestExecutionHelpers:
    def test_trace_for_matches_spec_identity(self, small_config):
        import numpy as np

        spec = dataclasses.replace(SMALL, config=small_config)
        trace = spec.trace_for("gcc")
        again = spec.trace_for("gcc")
        assert len(trace) > 0
        # Deterministic: same spec, same trace.
        for attr in ("op", "core", "line", "gap"):
            assert np.array_equal(getattr(trace, attr), getattr(again, attr))

    def test_policy_context_carries_spec_fields(self):
        profile = workload("gcc")
        ctx = SMALL.policy_context(profile)
        assert ctx.profile is profile
        assert ctx.config is SMALL.config
        assert ctx.seed == SMALL.seed
        assert ctx.epoch_s == SMALL.epoch_s

    def test_make_policy_resolves_via_registry(self):
        policy = SMALL.make_policy("LWT-4", workload("gcc"))
        assert policy.name == "LWT-4"


class TestRunSweepCanonicalization:
    def test_alias_spec_hits_same_memo_and_cache(self, tmp_path, small_config):
        from repro.experiments.cache import SweepCache

        cache = SweepCache(tmp_path)
        canonical = SimSpec(
            schemes=("LWT-4",), workloads=("gcc",), target_requests=600,
            config=small_config,
        )
        aliased = SimSpec(
            schemes=("readduo-lwt-4", "lwt-4"), workloads=("gcc",),
            target_requests=600, config=small_config,
        )
        try:
            grid = run_sweep(canonical, jobs=1, cache=cache)
            again = run_sweep(aliased, jobs=1, cache=cache)
            # Same canonical spec: the memoized grid is returned as-is.
            assert again is grid
            assert cache.counters.stores == 1
        finally:
            clear_sweep_cache()
