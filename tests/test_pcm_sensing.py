"""Unit tests for the sense-amplifier models."""

import numpy as np
import pytest

from repro.pcm.params import M_METRIC, R_METRIC
from repro.pcm.sensing import (
    HybridSenseAmplifier,
    MSenseAmplifier,
    RSenseAmplifier,
    sense_levels,
)


class TestSenseLevels:
    def test_quantizes_against_thresholds(self):
        values = np.asarray([3.0, 3.6, 4.7, 5.9])
        assert list(sense_levels(R_METRIC, values)) == [0, 1, 2, 3]

    def test_exact_threshold_goes_up(self):
        # np.digitize with right-open bins: a value at the reference
        # senses as the higher state (it has drifted *to* the boundary).
        assert int(sense_levels(R_METRIC, np.asarray([4.5]))[0]) == 2

    def test_m_metric_thresholds(self):
        values = np.asarray([-1.0, 0.0, 1.0, 2.0])
        assert list(sense_levels(M_METRIC, values)) == [0, 1, 2, 3]

    def test_scalar_input(self):
        assert int(sense_levels(R_METRIC, 5.9)) == 3


class TestAmplifiers:
    def test_latencies(self):
        assert RSenseAmplifier().latency_ns == 150.0
        assert MSenseAmplifier().latency_ns == 450.0

    def test_sense_counts_reads(self):
        amp = RSenseAmplifier()
        amp.sense(np.asarray([3.0, 4.0]))
        amp.sense(np.asarray([5.0]))
        assert amp.reads == 2
        assert amp.cells_sensed == 3

    def test_read_energy_uses_metric(self):
        r = RSenseAmplifier()
        m = MSenseAmplifier()
        assert m.read_energy_pj(512) > r.read_energy_pj(512)


class TestHybrid:
    def test_rm_latency_is_sum(self):
        hybrid = HybridSenseAmplifier()
        assert hybrid.rm_latency_ns == pytest.approx(600.0)

    def test_sense_r_then_m(self):
        hybrid = HybridSenseAmplifier()
        r_levels = hybrid.sense_r(np.asarray([3.0, 4.9]))
        m_levels = hybrid.sense_m(np.asarray([-1.0, 0.4]))
        assert list(r_levels) == [0, 2]
        assert list(m_levels) == [0, 1]

    def test_rm_energy_is_sum(self):
        hybrid = HybridSenseAmplifier()
        assert hybrid.rm_read_energy_pj(512) == pytest.approx(
            hybrid.r_amp.read_energy_pj(512) + hybrid.m_amp.read_energy_pj(512)
        )
