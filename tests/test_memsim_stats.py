"""Unit tests for the run-statistics container."""

import pytest

from repro.memsim.stats import RunStats


@pytest.fixture
def stats():
    s = RunStats(scheme="X", workload="w")
    s.execution_time_ns = 2e6
    s.instructions = 1_000_000
    s.reads = 100
    s.reads_by_mode = {"R": 90, "RM": 10}
    s.total_read_latency_ns = 20_000.0
    s.energy.by_category = {"read": 500.0, "write": 1500.0}
    s.wear.add_cells("demand", 296)
    return s


class TestDerivedMetrics:
    def test_ipc(self, stats):
        assert stats.ipc == pytest.approx(0.5)

    def test_ipc_zero_without_time(self):
        assert RunStats(scheme="X", workload="w").ipc == 0.0

    def test_avg_read_latency(self, stats):
        assert stats.avg_read_latency_ns == pytest.approx(200.0)

    def test_avg_read_latency_no_reads(self):
        assert RunStats(scheme="X", workload="w").avg_read_latency_ns == 0.0

    def test_mode_fraction(self, stats):
        assert stats.mode_fraction("R") == pytest.approx(0.9)
        assert stats.mode_fraction("M") == 0.0

    def test_dynamic_energy(self, stats):
        assert stats.dynamic_energy_pj == pytest.approx(2000.0)

    def test_total_cell_writes(self, stats):
        assert stats.total_cell_writes == 296

    def test_summary_keys(self, stats):
        summary = stats.summary()
        for key in ("scheme", "workload", "exec_ms", "ipc", "read_R",
                    "energy_uj", "cell_writes"):
            assert key in summary
        assert summary["exec_ms"] == pytest.approx(2.0)
