"""Unit tests for the trace container."""

import numpy as np
import pytest

from repro.traces.trace import OP_READ, OP_WRITE, Trace


def _tiny_trace():
    return Trace(
        op=np.asarray([OP_READ, OP_WRITE, OP_READ]),
        core=np.asarray([0, 1, 0]),
        line=np.asarray([10, 20, 30]),
        gap=np.asarray([5, 0, 2]),
        name="tiny",
    )


class TestTrace:
    def test_len(self):
        assert len(_tiny_trace()) == 3

    def test_stats(self):
        stats = _tiny_trace().stats()
        assert stats.reads == 2
        assert stats.writes == 1
        assert stats.instructions == 7 + 3
        assert stats.unique_lines == 3

    def test_per_core_indices(self):
        indices = _tiny_trace().per_core_indices()
        assert list(indices[0]) == [0, 2]
        assert list(indices[1]) == [1]

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            Trace(
                op=np.asarray([0]),
                core=np.asarray([0, 1]),
                line=np.asarray([1]),
                gap=np.asarray([0]),
            )

    def test_rejects_bad_op(self):
        with pytest.raises(ValueError):
            Trace(
                op=np.asarray([3]),
                core=np.asarray([0]),
                line=np.asarray([1]),
                gap=np.asarray([0]),
            )

    def test_rejects_negative_gap(self):
        with pytest.raises(ValueError):
            Trace(
                op=np.asarray([0]),
                core=np.asarray([0]),
                line=np.asarray([1]),
                gap=np.asarray([-1]),
            )

    def test_save_load_roundtrip(self, tmp_path):
        trace = _tiny_trace()
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.name == "tiny"
        assert (loaded.op == trace.op).all()
        assert (loaded.line == trace.line).all()
        assert (loaded.gap == trace.gap).all()

    def test_empty_trace(self):
        empty = np.empty(0, dtype=np.int64)
        trace = Trace(empty, empty, empty, empty)
        assert len(trace) == 0
        assert trace.num_cores() == 0
        assert trace.stats().requests == 0
