"""Unit + property tests for the BCH codec (the ReadDuo line code)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.bch import BCHCode, DecodeStatus, bch8_for_line


@pytest.fixture(scope="module")
def line_code():
    return bch8_for_line()


@pytest.fixture(scope="module")
def small_code():
    # A fast (63-ish, shortened) code for exhaustive-ish tests.
    return BCHCode(t=2, data_bits=32)


def _flip(codeword, positions):
    corrupted = codeword.copy()
    corrupted[list(positions)] ^= 1
    return corrupted


class TestConstruction:
    def test_line_code_dimensions(self, line_code):
        assert (line_code.n, line_code.k, line_code.r) == (592, 512, 80)
        assert line_code.m == 10

    def test_small_code_dimensions(self, small_code):
        assert small_code.k == 32
        assert small_code.r == small_code.m * 2  # t=2 over GF(2^6)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            BCHCode(t=0, data_bits=32)
        with pytest.raises(ValueError):
            BCHCode(t=2, data_bits=0)

    def test_rejects_oversized_payload(self):
        with pytest.raises(ValueError):
            BCHCode(t=8, data_bits=1000, m=10)


class TestEncode:
    def test_systematic_layout(self, small_code, rng):
        data = rng.integers(0, 2, small_code.k).astype(np.uint8)
        cw = small_code.encode(data)
        assert (cw[small_code.r :] == data).all()

    def test_zero_data_zero_codeword(self, small_code):
        cw = small_code.encode(np.zeros(small_code.k, dtype=np.uint8))
        assert cw.sum() == 0

    def test_rejects_wrong_length(self, small_code):
        with pytest.raises(ValueError):
            small_code.encode(np.zeros(small_code.k + 1, dtype=np.uint8))

    def test_codeword_has_zero_syndrome(self, small_code, rng):
        data = rng.integers(0, 2, small_code.k).astype(np.uint8)
        assert not any(small_code.syndromes(small_code.encode(data)))


class TestDecode:
    def test_clean_decode(self, small_code, rng):
        data = rng.integers(0, 2, small_code.k).astype(np.uint8)
        result = small_code.decode(small_code.encode(data))
        assert result.ok and result.errors_corrected == 0
        assert (result.data_bits == data).all()

    @pytest.mark.parametrize("errors", [1, 2])
    def test_corrects_within_t(self, small_code, rng, errors):
        data = rng.integers(0, 2, small_code.k).astype(np.uint8)
        cw = small_code.encode(data)
        positions = rng.choice(small_code.n, errors, replace=False)
        result = small_code.decode(_flip(cw, positions))
        assert result.ok
        assert result.errors_corrected == errors
        assert result.error_positions == tuple(sorted(int(p) for p in positions))
        assert (result.data_bits == data).all()

    @pytest.mark.parametrize("errors", [3, 4, 5])
    def test_detects_beyond_t(self, small_code, rng, errors):
        data = rng.integers(0, 2, small_code.k).astype(np.uint8)
        cw = small_code.encode(data)
        positions = rng.choice(small_code.n, errors, replace=False)
        result = small_code.decode(_flip(cw, positions))
        assert result.status is DecodeStatus.DETECTED_UNCORRECTABLE

    def test_line_code_corrects_eight(self, line_code, rng):
        data = rng.integers(0, 2, 512).astype(np.uint8)
        cw = line_code.encode(data)
        positions = rng.choice(line_code.n, 8, replace=False)
        result = line_code.decode(_flip(cw, positions))
        assert result.ok and result.errors_corrected == 8
        assert (result.data_bits == data).all()

    @pytest.mark.parametrize("errors", [9, 13, 17])
    def test_line_code_detects_9_to_17(self, line_code, rng, errors):
        # The ReadDuo-Hybrid design rests on this detection range.
        data = rng.integers(0, 2, 512).astype(np.uint8)
        cw = line_code.encode(data)
        positions = rng.choice(line_code.n, errors, replace=False)
        result = line_code.decode(_flip(cw, positions))
        assert result.status is DecodeStatus.DETECTED_UNCORRECTABLE

    def test_count_detected_errors_clean(self, line_code, rng):
        data = rng.integers(0, 2, 512).astype(np.uint8)
        assert line_code.count_detected_errors(line_code.encode(data)) == 0

    def test_count_detected_errors_correctable(self, line_code, rng):
        data = rng.integers(0, 2, 512).astype(np.uint8)
        cw = line_code.encode(data)
        bad = _flip(cw, rng.choice(line_code.n, 5, replace=False))
        assert line_code.count_detected_errors(bad) == 5

    def test_count_detected_errors_overflow(self, line_code, rng):
        data = rng.integers(0, 2, 512).astype(np.uint8)
        cw = line_code.encode(data)
        bad = _flip(cw, rng.choice(line_code.n, 12, replace=False))
        assert line_code.count_detected_errors(bad) == 17  # 2t + 1 marker

    @given(
        seed=st.integers(0, 2**16),
        errors=st.integers(0, 2),
    )
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, small_code, seed, errors):
        local = np.random.default_rng(seed)
        data = local.integers(0, 2, small_code.k).astype(np.uint8)
        cw = small_code.encode(data)
        positions = local.choice(small_code.n, errors, replace=False)
        result = small_code.decode(_flip(cw, positions))
        assert result.ok
        assert (result.data_bits == data).all()

    @given(
        seed=st.integers(0, 2**16),
        errors=st.integers(9, 17),
    )
    @settings(max_examples=20, deadline=None)
    def test_detection_property_line_code(self, line_code, seed, errors):
        # The full ReadDuo guarantee on the (592, 512) line code: 9..17
        # errors are always detected-uncorrectable — a silent miscorrect
        # anywhere in this range would break the R-M retry trigger and
        # the Hybrid scheme's correctness argument. (The t=2 small code
        # has no such window — its minimum distance is too small — so
        # this property is exercised on the real line code only.)
        local = np.random.default_rng(seed)
        data = local.integers(0, 2, line_code.k).astype(np.uint8)
        cw = line_code.encode(data)
        positions = local.choice(line_code.n, errors, replace=False)
        result = line_code.decode(_flip(cw, positions))
        assert result.status is DecodeStatus.DETECTED_UNCORRECTABLE
        assert not result.ok

    @given(seed=st.integers(0, 2**16), errors=st.integers(9, 17))
    @settings(max_examples=20, deadline=None)
    def test_detected_uncorrectable_returns_no_data(self, line_code, seed, errors):
        # A detected-uncorrectable decode must not leak a (necessarily
        # wrong) data payload for callers to use by accident.
        local = np.random.default_rng(seed)
        data = local.integers(0, 2, line_code.k).astype(np.uint8)
        cw = line_code.encode(data)
        positions = local.choice(line_code.n, errors, replace=False)
        result = line_code.decode(_flip(cw, positions))
        assert result.data_bits is None
        assert result.errors_corrected == 0


class TestExtractData:
    def test_extract(self, small_code, rng):
        data = rng.integers(0, 2, small_code.k).astype(np.uint8)
        assert (small_code.extract_data(small_code.encode(data)) == data).all()

    def test_rejects_wrong_length(self, small_code):
        with pytest.raises(ValueError):
            small_code.extract_data(np.zeros(3, dtype=np.uint8))
