"""Unit tests for the observability toolkit (repro.obs)."""

import json
import logging

import pytest

from repro.obs import (
    NULL_REGISTRY,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    NullTracer,
    Telemetry,
    Tracer,
    chrome_trace_events,
    configure_logging,
    get_logger,
    verbosity_to_level,
)


class TestHistogram:
    def test_bucket_assignment_upper_inclusive(self):
        h = Histogram([10.0, 20.0])
        for v in (5.0, 10.0, 15.0, 20.0, 25.0):
            h.record(v)
        assert h.counts == [2, 2, 1]
        assert h.count == 5
        assert h.sum == 75.0
        assert h.mean == 15.0

    def test_percentiles(self):
        h = Histogram([1.0, 2.0, 4.0])
        for v in [0.5] * 50 + [1.5] * 40 + [3.0] * 9 + [100.0]:
            h.record(v)
        assert h.percentile(50) == 1.0
        assert h.percentile(90) == 2.0
        assert h.percentile(99) == 4.0
        assert h.percentile(100) == 4.0  # overflow clamps to last edge

    def test_empty_and_validation(self):
        h = Histogram([1.0])
        assert h.percentile(99) == 0.0 and h.mean == 0.0
        with pytest.raises(ValueError):
            Histogram([])
        with pytest.raises(ValueError):
            Histogram([2.0, 1.0])
        with pytest.raises(ValueError):
            h.percentile(0)

    def test_to_dict_roundtrips_through_json(self):
        h = Histogram([1.0, 10.0])
        h.record(5.0)
        data = json.loads(json.dumps(h.to_dict()))
        assert data["counts"] == [0, 1, 0]
        assert data["count"] == 1


class TestMetricsRegistry:
    def test_instruments_are_idempotent(self):
        m = MetricsRegistry()
        c = m.counter("a")
        c.inc()
        c.inc(2)
        assert m.counter("a") is c and c.value == 3
        g = m.gauge("b")
        g.set(1.5)
        assert m.gauge("b").value == 1.5
        h = m.histogram("c", [1.0, 2.0])
        assert m.histogram("c") is h

    def test_kind_conflicts_rejected(self):
        m = MetricsRegistry()
        m.counter("x")
        with pytest.raises(ValueError):
            m.gauge("x")
        with pytest.raises(ValueError):
            m.histogram("x", [1.0])
        with pytest.raises(ValueError):
            m.histogram("fresh")  # first use needs boundaries

    def test_to_dict_and_dump(self, tmp_path):
        m = MetricsRegistry()
        m.counter("n").inc(7)
        m.histogram("lat", [1.0]).record(0.5)
        path = tmp_path / "m.json"
        m.dump_json(path)
        data = json.loads(path.read_text())
        assert data["counters"]["n"] == 7
        assert data["histograms"]["lat"]["counts"] == [1, 0]

    def test_null_registry_is_free_and_silent(self):
        n = NullRegistry()
        n.counter("a").inc(5)
        n.gauge("b").set(9)
        n.histogram("c").record(1.0)
        assert n.to_dict() == {"counters": {}, "gauges": {}, "histograms": {}}
        assert not n.enabled and not NULL_REGISTRY.enabled


class TestTracer:
    def test_emit_and_cap(self):
        t = Tracer(max_events=2)
        for i in range(5):
            t.emit({"kind": "x", "i": i})
        assert len(t) == 2 and t.dropped == 3

    def test_null_tracer_discards(self):
        t = NullTracer()
        t.emit({"kind": "x"})
        assert len(t) == 0 and not t.enabled

    def test_jsonl_export(self, tmp_path):
        t = Tracer()
        t.emit({"kind": "read", "b": 1})
        t.emit({"kind": "scrub", "a": 2})
        path = tmp_path / "t.jsonl"
        t.write_jsonl(path)
        lines = path.read_text().splitlines()
        assert [json.loads(line)["kind"] for line in lines] == ["read", "scrub"]

    def test_write_dispatches_on_extension(self, tmp_path):
        t = Tracer()
        t.emit({"kind": "misc", "time_ns": 5.0})
        t.write(tmp_path / "a.jsonl")
        t.write(tmp_path / "a.json")
        assert json.loads((tmp_path / "a.jsonl").read_text())["kind"] == "misc"
        chrome = json.loads((tmp_path / "a.json").read_text())
        assert "traceEvents" in chrome

    def test_chrome_conversion_known_kinds(self):
        records = [
            {"kind": "read", "core": 0, "bank": 3, "line": 9, "mode": "R",
             "queue_depth": 2, "issue_ns": 100.0, "start_ns": 120.0,
             "complete_ns": 300.0},
            {"kind": "write", "cause": "demand", "bank": 1, "line": 4,
             "start_ns": 0.0, "complete_ns": 250.0},
            {"kind": "write_cancel", "bank": 1, "line": 4, "progress": 0.1,
             "time_ns": 50.0},
            {"kind": "scrub", "time_ns": 10.0, "lines": 4, "rewrites": 1,
             "duration_ns": 600.0, "skipped": False},
            {"kind": "scrub", "time_ns": 20.0, "lines": 4, "rewrites": 0,
             "duration_ns": 0.0, "skipped": True},
            {"kind": "sweep_cache", "result": "hit", "runs": 4},
        ]
        events = chrome_trace_events(records)
        phases = {e["ph"] for e in events}
        assert phases == {"M", "X", "i"}
        read = next(e for e in events if e.get("cat") == "read")
        assert read["ts"] == pytest.approx(0.1) and read["dur"] == pytest.approx(0.2)
        assert read["args"]["queue_depth"] == 2
        # The whole thing must be JSON-serializable (Chrome requirement).
        json.dumps(events)


class TestTelemetry:
    def test_enabled_logic(self):
        assert not Telemetry().enabled
        assert not Telemetry(tracer=NullTracer(), metrics=NullRegistry()).enabled
        assert Telemetry(tracer=Tracer()).enabled
        assert Telemetry(metrics=MetricsRegistry()).enabled


class TestLogging:
    def test_verbosity_mapping(self):
        assert verbosity_to_level(0) == logging.WARNING
        assert verbosity_to_level(1) == logging.INFO
        assert verbosity_to_level(2) == logging.DEBUG
        assert verbosity_to_level(9) == logging.DEBUG

    def test_configure_is_idempotent(self):
        logger = configure_logging(verbosity=1)
        configure_logging(verbosity=1)
        names = [h.get_name() for h in logger.handlers]
        assert names.count("repro-cli") == 1
        assert logger.level == logging.INFO

    def test_explicit_level_and_namespace(self):
        logger = configure_logging(level="debug")
        assert logger.level == logging.DEBUG
        assert get_logger("x").name == "repro.x"
        assert get_logger().name == "repro"
        with pytest.raises(ValueError):
            configure_logging(level="nope")


class TestProgressLine:
    def _tty(self):
        import io

        class Tty(io.StringIO):
            def isatty(self):
                return True

        return Tty()

    def test_disabled_without_app_opt_in_even_on_tty(self):
        from repro.obs.progress import ProgressLine, set_progress_allowed

        previous = set_progress_allowed(False)
        try:
            line = ProgressLine(10, stream=self._tty())
            assert not line.enabled
        finally:
            set_progress_allowed(previous)

    def test_opt_in_plus_tty_enables(self):
        from repro.obs.progress import ProgressLine, set_progress_allowed

        previous = set_progress_allowed(True)
        try:
            import io

            assert ProgressLine(10, stream=self._tty()).enabled
            # Non-TTY stderr (CI logs, redirects) still suppresses.
            assert not ProgressLine(10, stream=io.StringIO()).enabled
        finally:
            set_progress_allowed(previous)

    def test_line_format_and_finish(self):
        from repro.obs.progress import ProgressLine

        stream = self._tty()
        line = ProgressLine(4, label="run units", stream=stream, enabled=True)
        line.update(1, detail="gcc/Ideal")
        text = stream.getvalue()
        assert "\r[1/4] 25% run units" in text
        assert "eta" in text and "gcc/Ideal" in text
        line.update(4)
        assert " in " in stream.getvalue()
        line.close()
        assert stream.getvalue().endswith("\n")

    def test_disabled_line_writes_nothing(self):
        import io

        from repro.obs.progress import ProgressLine

        stream = io.StringIO()
        line = ProgressLine(4, stream=stream, enabled=False)
        line.update(2)
        line.close()
        assert stream.getvalue() == ""

    def test_set_progress_allowed_returns_previous(self):
        from repro.obs.progress import progress_allowed, set_progress_allowed

        original = progress_allowed()
        try:
            assert set_progress_allowed(True) == original
            assert set_progress_allowed(False) is True
        finally:
            set_progress_allowed(original)
