"""Batch kernel == event-level oracle, bit for bit.

The batch engine (``engine="batch"``, the default) must be
indistinguishable from the event-stepped oracle (``engine="event"``) in
every observable: statistics dicts, telemetry records and metrics,
granular cache entry bytes, and sweep grids at any worker count — with
and without fault injection, with and without the compiled fast path.
That identity is what lets the engine flag stay out of
:meth:`SimSpec.content_hash` (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.registry import make_policy, scheme_names
from repro.core.schemes import PolicyContext
from repro.memsim.config import MemoryConfig
from repro.memsim.engine import ENGINES, simulate
from repro.traces.generator import generate_trace
from repro.traces.spec import instructions_for_requests, workload

REQUESTS = 1_500
WORKLOAD = "mcf"
SEED = 42


@pytest.fixture(scope="module")
def trace_and_config():
    config = MemoryConfig()
    profile = workload(WORKLOAD)
    instructions = instructions_for_requests(profile, REQUESTS, config.num_cores)
    trace = generate_trace(
        profile,
        instructions_per_core=instructions,
        num_cores=config.num_cores,
        seed=SEED,
    )
    return trace, config, profile


def _fresh_policy(scheme, profile, config):
    return make_policy(
        scheme, PolicyContext(profile=profile, config=config, seed=SEED)
    )


# --------------------------------------------------------- scheme sweep


@pytest.mark.parametrize("scheme", scheme_names())
def test_batch_equals_event_per_scheme(scheme, trace_and_config):
    """Every registered scheme family: identical stats dicts."""
    trace, config, profile = trace_and_config
    batch = simulate(
        trace, _fresh_policy(scheme, profile, config), config, engine="batch"
    )
    event = simulate(
        trace, _fresh_policy(scheme, profile, config), config, engine="event"
    )
    assert batch.to_dict() == event.to_dict()
    assert batch == event


@pytest.mark.parametrize("scheme", ["Hybrid", "Scrubbing", "M-metric", "Ideal"])
def test_batch_equals_event_with_faults(scheme, trace_and_config):
    """Nonzero fault density: schedules apply identically under batching."""
    from repro.experiments.spec import SimSpec

    trace, config, profile = trace_and_config
    spec = SimSpec(
        schemes=(scheme,),
        workloads=(WORKLOAD,),
        target_requests=REQUESTS,
        seed=SEED,
        faults={
            "stuck_line_rate": 0.01,
            "read_noise_rate": 0.002,
            "write_fail_rate": 0.01,
        },
    )
    results = {}
    for engine in ENGINES:
        # A fresh injector per run: injectors carry per-run draw state.
        faults = spec.fault_injector(WORKLOAD, scheme)
        assert faults is not None
        results[engine] = simulate(
            trace,
            _fresh_policy(scheme, profile, config),
            config,
            faults=faults,
            engine=engine,
        )
    assert results["batch"].to_dict() == results["event"].to_dict()


def test_batch_equals_event_telemetry(trace_and_config):
    """Tracer records, drop counts, and metric dumps match exactly."""
    from repro.obs import MetricsRegistry, Telemetry, Tracer

    trace, config, profile = trace_and_config
    captures = {}
    for engine in ENGINES:
        tele = Telemetry(tracer=Tracer(), metrics=MetricsRegistry())
        stats = simulate(
            trace,
            _fresh_policy("Hybrid", profile, config),
            config,
            telemetry=tele,
            engine=engine,
        )
        captures[engine] = (stats, tele.tracer.records, tele.tracer.dropped,
                            tele.metrics.to_dict())
    batch, event = captures["batch"], captures["event"]
    assert batch[0].to_dict() == event[0].to_dict()
    assert batch[1] == event[1]
    assert batch[2] == event[2]
    assert batch[3] == event[3]


def test_batch_equals_fallback_without_native(trace_and_config, monkeypatch):
    """The pure-python batch path (no compiled kernel) is also identical."""
    from repro.memsim import native

    trace, config, profile = trace_and_config
    fast = simulate(
        trace, _fresh_policy("Hybrid", profile, config), config, engine="batch"
    )
    monkeypatch.setenv("READDUO_NO_NATIVE", "1")
    monkeypatch.setattr(native, "_lib", native._UNSET)
    try:
        assert native.load_timeline() is None
        slow = simulate(
            trace, _fresh_policy("Hybrid", profile, config), config,
            engine="batch",
        )
    finally:
        monkeypatch.setattr(native, "_lib", native._UNSET)
    assert fast.to_dict() == slow.to_dict()


# ------------------------------------------------------ sweep and cache


def _sweep_spec(engine, extra=()):
    from repro.experiments.spec import SimSpec

    return SimSpec(
        schemes=("Ideal", "Hybrid", "LWT-2", "Select-4:1") + tuple(extra),
        workloads=("mcf", "gcc"),
        target_requests=800,
        seed=SEED,
        engine=engine,
    )


def _flat(grid):
    return [
        (w, s, stats.to_dict())
        for w, per_scheme in grid.items()
        for s, stats in per_scheme.items()
    ]


@pytest.mark.parametrize("jobs", [1, 2])
def test_sweep_grid_identical_across_engines(jobs, tmp_path):
    """Whole grids agree for serial and parallel execution alike."""
    from repro.experiments.runner import clear_sweep_cache, run_sweep

    grids = {}
    for engine in ENGINES:
        clear_sweep_cache()
        grids[engine] = run_sweep(_sweep_spec(engine), jobs=jobs, cache=False)
    clear_sweep_cache()
    assert _flat(grids["batch"]) == _flat(grids["event"])


def test_granular_cache_entries_byte_identical(tmp_path):
    """Batch-produced run-cache entries are byte-identical to scalar ones.

    Cached artifacts therefore stay valid across engines, which is the
    load-bearing fact behind keeping ``engine`` out of the content hash.
    """
    from repro.experiments.cache import SweepCache
    from repro.experiments.runner import clear_sweep_cache, run_sweep

    dirs = {}
    for engine in ENGINES:
        clear_sweep_cache()
        cache = SweepCache(tmp_path / engine)
        run_sweep(_sweep_spec(engine), jobs=1, cache=cache)
        runs_dir = tmp_path / engine / "runs"
        dirs[engine] = {
            p.name: p.read_bytes() for p in sorted(runs_dir.glob("*.json"))
        }
    clear_sweep_cache()
    assert dirs["batch"], "no granular cache entries were written"
    assert dirs["batch"].keys() == dirs["event"].keys()  # same run hashes
    assert dirs["batch"] == dirs["event"]  # same bytes

    # And a replay from the scalar-produced cache serves the batch spec.
    clear_sweep_cache()
    cache = SweepCache(tmp_path / "event")
    replayed = run_sweep(_sweep_spec("batch"), jobs=1, cache=cache)
    clear_sweep_cache()
    fresh = run_sweep(_sweep_spec("batch"), jobs=1, cache=False)
    clear_sweep_cache()
    assert _flat(replayed) == _flat(fresh)


# ------------------------------------------------------ spec/engine flag


def test_simspec_engine_validation():
    from repro.experiments.spec import SimSpec, SpecError

    with pytest.raises(SpecError):
        SimSpec(workloads=("mcf",), engine="bogus")


def test_simspec_engine_outside_identity():
    from repro.experiments.spec import SimSpec

    batch = _sweep_spec("batch")
    event = _sweep_spec("event")
    assert batch.content_hash() == event.content_hash()
    # Only the non-default engine is serialized, so old spec files and
    # their hashes round-trip unchanged.
    assert "engine" not in batch.to_dict()
    assert event.to_dict()["engine"] == "event"
    assert SimSpec.from_dict(event.to_dict()).engine == "event"
    assert SimSpec.from_dict(batch.to_dict()).engine == "batch"


def test_simulate_rejects_unknown_engine(trace_and_config):
    trace, config, profile = trace_and_config
    with pytest.raises(ValueError, match="unknown engine"):
        simulate(
            trace, _fresh_policy("Ideal", profile, config), config,
            engine="vector",
        )


# ------------------------------------------- vectorized helper parity


def test_classify_error_counts_matches_scalar():
    from repro.ecc.regimes import (
        REGIME_BY_CODE,
        classify_error_count,
        classify_error_counts,
    )

    counts = np.arange(0, 40)
    codes = classify_error_counts(counts)
    assert codes.dtype == np.int8
    for count, code in zip(counts.tolist(), codes.tolist()):
        assert REGIME_BY_CODE[code] is classify_error_count(count)
    with pytest.raises(ValueError):
        classify_error_counts(np.asarray([3, -1]))


def test_cellarray_read_lines_matches_read_line(rng):
    from repro.pcm.array import CellArray

    array = CellArray(num_lines=32, cells_per_line=64, rng=rng)
    lines = np.asarray([0, 5, 5, 31, 2])
    now_s = 3_600.0
    for metric in ("R", "M"):
        sensed, errors = array.read_lines(lines, now_s, metric)
        assert sensed.shape == (len(lines), 64)
        for i, line in enumerate(lines.tolist()):
            single = array.read_line(line, now_s, metric)
            assert np.array_equal(sensed[i], single.sensed_levels)
            assert int(errors[i]) == single.cell_errors


def test_sense_batch_matches_sequential(rng):
    from repro.pcm.sensing import RSenseAmplifier

    values = rng.normal(3.0, 1.0, size=(7, 16))
    one = RSenseAmplifier()
    rows = np.stack([one.sense(row) for row in values])
    batched = RSenseAmplifier()
    levels = batched.sense_batch(values)
    assert np.array_equal(levels, rows)
    assert batched.reads == one.reads == 7
    assert batched.cells_sensed == one.cells_sensed == values.size
    with pytest.raises(ValueError):
        batched.sense_batch(values[0])


def test_sense_cells_at_matches_scalar(rng):
    from repro.pcm.cell import Cell, sense_cells_at
    from repro.pcm.params import R_METRIC

    cells = [Cell.program(R_METRIC, lv % 4, rng, now_s=0.0) for lv in range(12)]
    now_s = 7_200.0
    batched = sense_cells_at(R_METRIC, cells, now_s)
    assert batched.tolist() == [c.sense_at(R_METRIC, now_s) for c in cells]
    assert sense_cells_at(R_METRIC, [], now_s).shape == (0,)
