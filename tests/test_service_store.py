"""Tests for the pluggable run-store backends (repro.service.store)."""

import pytest

from repro.experiments.cache import RunCache, RunStore
from repro.experiments.planner import build_plan, execute_plan
from repro.experiments.runner import clear_sweep_cache, run_sweep
from repro.experiments.spec import SimSpec
from repro.service.store import FilesystemRunStore, MemoryRunStore


@pytest.fixture(autouse=True)
def clean_memo():
    clear_sweep_cache()
    yield
    clear_sweep_cache()


SPEC = SimSpec(schemes=("Ideal",), workloads=("gcc",), target_requests=1_000)


def _one_stats():
    return run_sweep(SPEC, jobs=1)["gcc"]["Ideal"]


class TestInterface:
    def test_filesystem_store_is_the_run_cache(self):
        assert FilesystemRunStore is RunCache

    def test_backends_implement_the_abc(self, tmp_path):
        assert isinstance(RunCache(tmp_path), RunStore)
        assert isinstance(MemoryRunStore(), RunStore)

    def test_abc_is_not_instantiable(self):
        with pytest.raises(TypeError):
            RunStore()


class TestMemoryRunStore:
    def test_round_trip_is_bit_identical(self):
        stats = _one_stats()
        store = MemoryRunStore()
        key = SPEC.run_hash("gcc", "Ideal")
        store.store(key, stats)
        reloaded = store.load(key)
        assert reloaded is not None
        assert reloaded.to_dict() == stats.to_dict()
        assert store.counters.stores == 1
        assert store.counters.hits == 1

    def test_miss_counts(self):
        store = MemoryRunStore()
        assert store.load("deadbeef") is None
        assert store.counters.misses == 1

    def test_unparseable_entry_drops_and_counts_stale(self):
        store = MemoryRunStore()
        store._entries["bad"] = "{not json"
        assert store.load("bad") is None
        assert store.counters.stale == 1
        assert len(store) == 0

    def test_entry_bytes_and_clear(self):
        store = MemoryRunStore()
        key = SPEC.run_hash("gcc", "Ideal")
        assert store.entry_bytes(key) is None
        store.store(key, _one_stats())
        size = store.entry_bytes(key)
        assert size is not None and size > 0
        assert store.clear() == 1
        assert len(store) == 0

    def test_planner_accepts_memory_store(self):
        store = MemoryRunStore()
        plan = build_plan([SPEC])
        execute_plan(plan, jobs=1, store=store)
        assert plan.stats.units_simulated == 1
        assert len(store) == 1
        # Second pass with a cold memo resolves from the store.
        clear_sweep_cache()
        warm = build_plan([SPEC])
        execute_plan(warm, jobs=1, store=store)
        assert warm.stats.units_simulated == 0
        assert warm.stats.units_disk == 1


class TestFilesystemEntryBytes:
    def test_entry_bytes_matches_file_size(self, tmp_path):
        store = RunCache(tmp_path)
        key = SPEC.run_hash("gcc", "Ideal")
        assert store.entry_bytes(key) is None
        store.store(key, _one_stats())
        assert store.entry_bytes(key) == store.path_for(key).stat().st_size
