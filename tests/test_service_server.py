"""Tests for the serve daemon (repro.service.server) and its client.

All tests run a real :class:`SimServer` on a loopback port inside
``asyncio.run`` (plain sync test functions — no pytest-asyncio
dependency) and talk to it over actual HTTP through
:class:`~repro.service.client.ServeClient`.
"""

import asyncio
import json

import pytest

from repro.experiments.runner import clear_sweep_cache
from repro.service.client import ServeClient, ServeError
from repro.service.server import ServeConfig, SimServer


@pytest.fixture(autouse=True)
def clean_memo():
    clear_sweep_cache()
    yield
    clear_sweep_cache()


DOC = {"schemes": ["Ideal"], "workloads": ["gcc"], "target_requests": 400}


def _config(**overrides):
    defaults = dict(port=0, cache=False, max_pending=64,
                    max_inflight_per_client=64)
    defaults.update(overrides)
    return ServeConfig(**defaults)


async def _with_server(config, body):
    server = SimServer(config)
    await server.start()
    try:
        return await body(server, ServeClient(port=server.port, client_id="test"))
    finally:
        await server.stop()


def run(body, **config_overrides):
    return asyncio.run(_with_server(_config(**config_overrides), body))


class TestEndpoints:
    def test_health(self):
        async def body(server, client):
            return await client.health()

        payload = run(body)
        assert payload["status"] == "ok"
        assert payload["pending"] == 0

    def test_schemes_catalog(self):
        async def body(server, client):
            return await client.schemes()

        catalog = run(body)
        names = [entry["name"] for entry in catalog["schemes"]]
        assert "Hybrid" in names and "LWT-4" in names
        assert catalog["alias_prefix"] == "readduo-"
        assert any(
            f["syntax"].startswith("LWT-") for f in catalog["families"]
        )

    def test_unknown_route_404(self):
        async def body(server, client):
            status, _headers, blob = await client.request("GET", "/nope")
            return status, json.loads(blob)

        status, payload = run(body)
        assert status == 404
        assert "error" in payload

    def test_wrong_method_405(self):
        async def body(server, client):
            status, _headers, _blob = await client.request("GET", "/v1/submit")
            return status

        assert run(body) == 405

    def test_invalid_spec_400(self):
        async def body(server, client):
            try:
                await client.submit({"schemes": ["NoSuchScheme"]})
            except ServeError as exc:
                return exc.status, exc.payload
            return None

        status, payload = run(body)
        assert status == 400
        assert "unknown schemes" in payload["error"]

    def test_invalid_json_400(self):
        async def body(server, client):
            status, _headers, _blob = await client.request(
                "POST", "/v1/submit", body=None
            )
            # An empty body parses as {} (a valid default spec would be
            # huge); send actual garbage through a raw socket instead.
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            payload = b"{not json"
            writer.write(
                b"POST /v1/submit HTTP/1.1\r\nHost: x\r\n"
                b"Connection: close\r\n"
                + f"Content-Length: {len(payload)}\r\n\r\n".encode()
                + payload
            )
            await writer.drain()
            raw = await reader.read(-1)
            writer.close()
            await writer.wait_closed()
            return raw

        raw = run(body)
        assert b"400" in raw.split(b"\r\n", 1)[0]


class TestSubmit:
    def test_submit_returns_sweep_payload_shape(self):
        async def body(server, client):
            return await client.submit(DOC)

        payload = run(body)
        assert payload["target_requests"] == 400
        assert payload["seed"] == 42
        runs = payload["runs"]["gcc"]["Ideal"]
        assert "execution_time_ns" in runs and "avg_read_ns" in runs
        assert payload["plan"]["units"] == 1
        assert payload["plan"]["units_owned"] == 1
        assert payload["plan"]["owned_stats"]["units_simulated"] == 1

    def test_warm_resubmit_simulates_zero_units(self):
        async def body(server, client):
            await client.submit(DOC)
            second = await client.submit(DOC)
            return second, server.stats()

        second, stats = run(body)
        assert second["plan"]["owned_stats"]["units_simulated"] == 0
        assert second["plan"]["owned_stats"]["units_memo"] == 1
        assert stats["counters"]["tier_simulated"] == 1
        assert stats["counters"]["tier_memo"] == 1

    def test_concurrent_identical_requests_simulate_exactly_once(self):
        """The coalescing guarantee, proven via the ledger tier counters:

        N concurrent identical submits resolve exactly one unit by
        simulation; every other request joins the in-flight execution.
        """
        n_requests = 12

        async def body(server, client):
            results = await asyncio.gather(
                *(client.submit(DOC) for _ in range(n_requests))
            )
            return results, server.stats()

        results, stats = run(body)
        assert len(results) == n_requests
        # One ledger record with tier "simulated", and nothing else
        # executed: duplicates coalesced rather than re-planned.
        assert stats["counters"]["tier_simulated"] == 1
        owned = sum(r["plan"]["units_owned"] for r in results)
        joined = sum(r["plan"]["units_joined"] for r in results)
        assert owned == 1
        assert joined == n_requests - 1
        assert stats["counters"]["units_coalesced"] == n_requests - 1
        assert stats["coalescing_ratio"] == pytest.approx(
            (n_requests - 1) / n_requests
        )
        # Every coalesced request still got the full result payload.
        reference = json.dumps(results[0]["runs"], sort_keys=True)
        for result in results[1:]:
            assert json.dumps(result["runs"], sort_keys=True) == reference

    def test_concurrent_distinct_requests_all_execute(self):
        docs = [dict(DOC, seed=seed) for seed in (1, 2, 3)]

        async def body(server, client):
            await asyncio.gather(*(client.submit(doc) for doc in docs))
            return server.stats()

        stats = run(body)
        assert stats["counters"]["tier_simulated"] == 3
        assert stats["counters"]["units_coalesced"] == 0

    def test_served_results_match_local_execution(self):
        async def body(server, client):
            return await client.submit(DOC)

        served = run(body)

        from repro.experiments.spec import SimSpec
        from repro.service import ExecutionService, sweep_payload

        clear_sweep_cache()
        service = ExecutionService(cache=False)
        spec = SimSpec.from_dict(DOC)
        local = sweep_payload(spec, service.sweep(spec))
        served.pop("plan")
        assert json.dumps(served, sort_keys=True) == json.dumps(
            local, sort_keys=True
        )


class TestStreaming:
    def test_stream_emits_unit_events_then_result(self):
        async def body(server, client):
            return await client.submit_streaming(DOC)

        events, result = run(body)
        assert result["runs"]["gcc"]["Ideal"]["scheme"] == "Ideal"
        kinds = [event["kind"] for event in events]
        assert kinds == ["run"]
        assert events[0]["tier"] == "simulated"
        assert events[0]["workload"] == "gcc"

    def test_streamed_join_reports_coalesced_event(self):
        async def body(server, client):
            plain, streamed = await asyncio.gather(
                client.submit(DOC), client.submit_streaming(DOC)
            )
            return plain, streamed

        _plain, (events, result) = run(body)
        kinds = {event["kind"] for event in events}
        # The streamed request either owned the unit (run event) or
        # joined the plain one (coalesced marker) — both stream progress.
        assert kinds <= {"run", "coalesced"}
        assert result["plan"]["units"] == 1


class TestBackpressure:
    def test_global_queue_bound_rejects_with_429(self):
        async def body(server, client):
            try:
                await client.submit(DOC)
            except ServeError as exc:
                return exc, server.stats()
            return None

        result = run(body, max_pending=0)
        assert result is not None
        exc, stats = result
        assert exc.status == 429
        assert exc.payload["retry_after_s"] == 1
        assert stats["counters"]["rejected_queue_full"] == 1

    def test_per_client_limit_rejects_excess_inflight(self):
        async def body(server, client):
            # Hold the single executor thread hostage with one slow
            # request so the rest stack up as admitted-but-unfinished.
            blocker = asyncio.ensure_future(client.submit(dict(DOC, seed=77)))
            await asyncio.sleep(0.01)
            outcomes = await asyncio.gather(
                *(client.submit(dict(DOC, seed=i)) for i in range(6)),
                return_exceptions=True,
            )
            await blocker
            return outcomes, server.stats()

        outcomes, stats = run(body, max_inflight_per_client=2)
        rejected = [
            o for o in outcomes
            if isinstance(o, ServeError) and o.status == 429
        ]
        assert rejected, "expected at least one per-client 429"
        assert stats["counters"]["rejected_client_limit"] == len(rejected)

    def test_distinct_clients_have_separate_buckets(self):
        async def body(server, client):
            other = ServeClient(port=server.port, client_id="other")
            first, second = await asyncio.gather(
                client.submit(DOC), other.submit(DOC), return_exceptions=True
            )
            return first, second

        first, second = run(body, max_inflight_per_client=1)
        assert not isinstance(first, Exception)
        assert not isinstance(second, Exception)


class TestMemoControl:
    def test_memo_clear_endpoint(self):
        async def body(server, client):
            await client.submit(DOC)
            before = server.service.memo_size()
            cleared = await client.clear_memo()
            return before, cleared

        before, cleared = run(body)
        assert before >= 1
        assert cleared == {"cleared": True, "memo_runs": 0}

    def test_memo_capacity_override_restored_on_stop(self):
        from repro.experiments.planner import run_memo_capacity

        original = run_memo_capacity()

        async def body(server, client):
            return run_memo_capacity()

        inside = run(body, memo_capacity=17)
        assert inside == 17
        assert run_memo_capacity() == original


class TestStats:
    def test_stats_document_shape(self):
        async def body(server, client):
            await client.submit(DOC)
            return await client.stats()

        stats = run(body)
        assert stats["service"]["jobs"] == 1
        assert stats["limits"]["max_pending"] == 64
        assert stats["ledger_records"] == 1
        assert 0.0 <= stats["coalescing_ratio"] <= 1.0


class TestExecutorPool:
    """The bounded submit-executor pool (serve's tail-latency fix)."""

    def test_pool_size_reported_in_stats(self):
        async def body(server, client):
            return await client.stats()

        stats = run(body, executor_workers=3)
        assert stats["limits"]["executor_workers"] == 3
        assert stats["distributed"] is False
        assert stats["coordinator"] is None

    def test_warm_submit_bypasses_long_cold_simulation(self):
        # The head-of-line scenario the pool exists for: a memo-warm
        # submit must not queue behind a long-running cold simulation.
        async def body(server, client):
            await client.submit(DOC)  # warm DOC's unit in the memo
            long_doc = {
                "schemes": ["Hybrid"],
                "workloads": ["mcf"],
                "target_requests": 200_000,
            }
            long_task = asyncio.ensure_future(client.submit(long_doc))
            await asyncio.sleep(0.05)  # let the long sim take a thread
            await client.submit(DOC)
            warm_done_first = not long_task.done()
            await long_task
            return warm_done_first

        assert run(body, executor_workers=2)

    def test_concurrent_distinct_submits_all_complete(self):
        async def body(server, client):
            docs = [dict(DOC, seed=500 + i) for i in range(6)]
            payloads = await asyncio.gather(
                *(client.submit(doc) for doc in docs)
            )
            return payloads, await client.stats()

        payloads, stats = run(body, executor_workers=2)
        assert len(payloads) == 6
        assert stats["counters"]["units_owned"] == 6
        seeds = {p["seed"] for p in payloads}
        assert seeds == {500 + i for i in range(6)}
