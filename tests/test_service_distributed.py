"""Distributed execution tests: lease protocol, worker death, stores.

Server-side tests run a real ``SimServer`` with ``distributed=True`` on
a loopback port inside ``asyncio.run`` (plain sync test functions — no
pytest-asyncio) and talk to it over actual HTTP. Fake workers reuse the
real worker-process machinery (:class:`CoordinatorLink`,
:func:`_execute_lease`) inside ``asyncio.to_thread`` so the protocol
exercised here is byte-for-byte the one ``readduo worker`` speaks.
"""

import asyncio
import time

import pytest

from repro.experiments.cache import SweepCache
from repro.experiments.planner import build_plan, execute_plan
from repro.experiments.runner import clear_sweep_cache
from repro.experiments.spec import SimSpec
from repro.obs import Telemetry
from repro.service.client import ServeClient, ServeError
from repro.service.coordinator import LeaseCoordinator
from repro.service.execution import ExecutionService, sweep_payload
from repro.service.server import ServeConfig, SimServer
from repro.service.store import (
    FilesystemRunStore,
    RemoteRunStore,
    parse_store_entry,
    store_entry_payload,
)
from repro.service.worker import CoordinatorLink, _CaptureLedger, _execute_lease


@pytest.fixture(autouse=True)
def clean_memo():
    clear_sweep_cache()
    yield
    clear_sweep_cache()


DOC = {"schemes": ["Ideal", "Hybrid"], "workloads": ["gcc"],
       "target_requests": 300}
DOC_ONE = {"schemes": ["Ideal"], "workloads": ["gcc"],
           "target_requests": 300}


def _config(**overrides):
    defaults = dict(port=0, cache=False, distributed=True,
                    max_pending=64, max_inflight_per_client=64)
    defaults.update(overrides)
    return ServeConfig(**defaults)


async def _with_server(config, body):
    server = SimServer(config)
    await server.start()
    try:
        return await body(server, ServeClient(port=server.port,
                                              client_id="test"))
    finally:
        await server.stop()


def run(body, **config_overrides):
    return asyncio.run(_with_server(_config(**config_overrides), body))


async def _wait_for(client, predicate, timeout=10.0):
    """Poll ``/v1/stats`` until ``predicate(stats)`` holds."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        stats = await client.stats()
        if predicate(stats):
            return stats
        await asyncio.sleep(0.02)
    pytest.fail("condition not reached within timeout")


def _execute_units(units, jobs=1):
    """Produce one lease's ``/v1/complete`` results, like a real worker."""
    capture = _CaptureLedger()
    service = ExecutionService(
        jobs=jobs, cache=False, telemetry=Telemetry(ledger=capture)
    )
    try:
        return _execute_lease(service, capture, units)
    finally:
        service.close()


def _fake_worker(port, worker_id, jobs=1, die_after_lease=False):
    """Synchronous worker loop against a live server; runs in a thread.

    Returns the number of units completed, or -1 when ``die_after_lease``
    made it grab a batch and vanish without completing (the crash case
    the lease TTL exists for).
    """
    link = CoordinatorLink(f"http://127.0.0.1:{port}", worker_id)
    capture = _CaptureLedger()
    service = ExecutionService(
        jobs=jobs, cache=False, telemetry=Telemetry(ledger=capture)
    )
    done = 0
    try:
        while True:
            granted = link.lease(8)
            if granted is None or not granted.get("lease"):
                return done
            if die_after_lease:
                return -1
            results = _execute_lease(service, capture, granted["units"])
            link.complete(str(granted["lease"]), results)
            done += len(results)
    finally:
        service.close()


def _local_reference_runs(doc):
    """The bit-for-bit local answer for one submit document's ``runs``."""
    spec = SimSpec.from_dict(doc)
    service = ExecutionService(jobs=1, cache=False)
    try:
        outcome = service.submit([spec])
        grid = {
            workload: {
                scheme: outcome.results[spec.run_hash(workload, scheme)]
                for scheme in spec.schemes
            }
            for workload in spec.effective_workloads()
        }
    finally:
        service.close()
    return sweep_payload(spec, grid)["runs"]


class TestLeaseCoordinator:
    """Event-loop-level coordinator semantics, no HTTP."""

    def test_enqueue_is_coalescing_and_lease_drains_pending(self):
        async def body():
            spec = SimSpec.from_dict(DOC)
            units = build_plan([spec]).units
            coord = LeaseCoordinator(ttl_s=30.0, max_units=8)
            first = coord.enqueue(units)
            again = coord.enqueue(units)
            assert first == again  # same futures, not new ones
            granted = coord.lease("w1")
            assert granted is not None
            assert {u["key"] for u in granted["units"]} == set(first)
            assert not coord.pending
            assert coord.lease("w2") is None  # nothing left
            return coord

        coord = asyncio.run(body())
        assert coord.counters["units_enqueued"] == 2
        assert coord.counters["units_leased"] == 2

    def test_expiry_requeues_and_late_complete_is_accepted(self):
        async def body():
            spec = SimSpec.from_dict(DOC_ONE)
            units = build_plan([spec]).units
            coord = LeaseCoordinator(ttl_s=0.2, max_units=8)
            futures = coord.enqueue(units)
            granted = coord.lease("doomed")
            lease_id = granted["lease"]
            loop = asyncio.get_running_loop()
            assert coord.release_expired(loop.time() + 1.0) == 1
            assert coord.heartbeat(lease_id, "doomed") is None
            assert units[0].key in coord.pending  # back in the queue
            # The doomed worker finishes anyway and pushes late.
            stats_payload = {"stats": {"fake": 1}}
            outcome = coord.complete(
                lease_id, "doomed", {units[0].key: stats_payload}
            )
            assert outcome == {"accepted": 1, "requeued": 0, "late": 1}
            assert futures[units[0].key].result() == {"fake": 1}
            return coord

        coord = asyncio.run(body())
        assert coord.counters["leases_expired"] == 1
        assert coord.counters["units_requeued"] == 1
        assert coord.counters["late_results"] == 1

    def test_partial_complete_requeues_only_missing_units(self):
        async def body():
            spec = SimSpec.from_dict(DOC)
            units = build_plan([spec]).units
            coord = LeaseCoordinator(ttl_s=30.0, max_units=8)
            coord.enqueue(units)
            granted = coord.lease("w1")
            done, missing = granted["units"][0], granted["units"][1]
            outcome = coord.complete(
                granted["lease"], "w1",
                {done["key"]: {"stats": {"fake": 1}}},
            )
            assert outcome["accepted"] == 1 and outcome["requeued"] == 1
            assert missing["key"] in coord.pending
            assert done["key"] not in coord.pending
            return coord

        asyncio.run(body())

    def test_exhausted_requeues_fall_back_locally(self):
        async def body():
            spec = SimSpec.from_dict(DOC_ONE)
            units = build_plan([spec]).units
            fallback_calls = []

            async def fallback(batch):
                fallback_calls.append([u.key for u in batch])
                for u in batch:
                    coord.resolve_local(u.key, {"fake": 1})

            coord = LeaseCoordinator(
                ttl_s=0.2, max_units=8, max_requeues=1, fallback=fallback
            )
            futures = coord.enqueue(units)
            loop = asyncio.get_running_loop()
            for _ in range(2):  # exceed max_requeues=1
                coord.lease("flaky")
                coord.release_expired(loop.time() + 1.0)
            await asyncio.sleep(0)  # let the fallback task run
            assert fallback_calls == [[units[0].key]]
            assert futures[units[0].key].result() == {"fake": 1}
            return coord

        coord = asyncio.run(body())
        assert coord.counters["units_fallback"] == 1


class TestDistributedProtocol:
    """The HTTP face: /v1/lease, /v1/heartbeat, /v1/complete."""

    def test_lease_without_distributed_mode_409(self):
        async def body(server, client):
            try:
                await client.lease("w1")
            except ServeError as exc:
                return exc.status
            return None

        assert run(body, distributed=False) == 409

    def test_lease_idle_returns_no_units(self):
        async def body(server, client):
            return await client.lease("w1")

        payload = run(body)
        assert payload == {"lease": None, "units": []}

    def test_full_cycle_resolves_the_submit(self):
        async def body(server, client):
            submit = asyncio.ensure_future(client.submit(DOC_ONE))
            await _wait_for(
                client,
                lambda s: s["coordinator"]["counters"]["units_enqueued"] == 1,
            )
            granted = await client.lease("w1")
            assert granted["lease"] and len(granted["units"]) == 1
            unit = granted["units"][0]
            assert unit["workload"] == "gcc" and unit["scheme"] == "Ideal"
            beat = await client.heartbeat(granted["lease"], "w1")
            assert beat["ok"] and beat["ttl_s"] > 0
            results = await asyncio.to_thread(
                _execute_units, granted["units"]
            )
            outcome = await client.complete(granted["lease"], "w1", results)
            assert outcome["accepted"] == 1 and outcome["invalid"] == 0
            payload = await submit
            # A completed lease is gone: heartbeats now 404.
            try:
                await client.heartbeat(granted["lease"], "w1")
                gone = False
            except ServeError as exc:
                gone = exc.status == 404
            return payload, gone

        payload, gone = run(body)
        assert gone
        assert payload["plan"]["owned_stats"]["units_leased"] == 1
        clear_sweep_cache()
        assert payload["runs"] == _local_reference_runs(DOC_ONE)

    def test_unparseable_results_rejected_not_poisonous(self):
        async def body(server, client):
            submit = asyncio.ensure_future(client.submit(DOC_ONE))
            await _wait_for(
                client, lambda s: s["coordinator"]["pending_units"] == 1
            )
            granted = await client.lease("w1")
            key = granted["units"][0]["key"]
            outcome = await client.complete(
                granted["lease"], "w1", {key: {"stats": {"garbage": True}}}
            )
            # The garbage result is dropped and the unit requeued (the
            # lease finished without delivering it) — not handed to the
            # waiting submit.
            assert outcome["invalid"] == 1 and outcome["accepted"] == 0
            assert outcome["requeued"] == 1
            granted = await client.lease("w2")
            results = await asyncio.to_thread(
                _execute_units, granted["units"]
            )
            await client.complete(granted["lease"], "w2", results)
            return await submit

        payload = run(body)
        clear_sweep_cache()
        assert payload["runs"] == _local_reference_runs(DOC_ONE)

    def test_warm_rerun_leases_zero_units(self, tmp_path):
        async def body(server, client):
            submit = asyncio.ensure_future(client.submit(DOC))
            await _wait_for(
                client, lambda s: s["coordinator"]["pending_units"] > 0
            )
            await asyncio.to_thread(_fake_worker, server.port, "w1")
            first = await submit
            cold_leased = (await client.stats())["coordinator"]["counters"][
                "units_leased"]
            # Clear the in-process memo: the rerun must resolve through
            # the shared run store, still without leasing anything.
            await client.clear_memo()
            second = await client.submit(DOC)
            warm_leased = (await client.stats())["coordinator"]["counters"][
                "units_leased"]
            return first, second, cold_leased, warm_leased

        first, second, cold_leased, warm_leased = run(
            body, cache=str(tmp_path)
        )
        assert cold_leased == 2
        assert warm_leased == cold_leased  # zero new leases when warm
        assert first["runs"] == second["runs"]


class TestWorkerDeath:
    """The satellite scenario: a worker dies mid-batch; the sweep still
    finishes, bit-identical, across jobs x workers topologies."""

    @pytest.mark.parametrize("jobs", [1, 2])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_death_requeue_drain_bit_identical(self, jobs, workers):
        async def body(server, client):
            submit = asyncio.ensure_future(client.submit(DOC))
            await _wait_for(
                client, lambda s: s["coordinator"]["pending_units"] > 0
            )
            died = await asyncio.to_thread(
                _fake_worker, server.port, "doomed", 1, True
            )
            assert died == -1  # it leased a batch, then vanished
            await _wait_for(
                client,
                lambda s: s["coordinator"]["counters"]["units_requeued"] > 0,
            )
            drained = await asyncio.gather(*(
                asyncio.to_thread(
                    _fake_worker, server.port, f"w{index}", jobs
                )
                for index in range(workers)
            ))
            payload = await submit
            return payload, sum(drained), await client.stats()

        payload, drained, stats = run(body, lease_ttl_s=0.3, lease_units=2)
        counters = stats["coordinator"]["counters"]
        assert counters["leases_expired"] >= 1
        assert counters["units_requeued"] >= 1
        assert drained >= 1  # the survivors did real work
        assert stats["coordinator"]["unresolved_units"] == 0
        clear_sweep_cache()
        assert payload["runs"] == _local_reference_runs(DOC)


class TestStoreEndpoints:
    def test_get_missing_entry_is_none(self):
        async def body(server, client):
            return await client.store_get("deadbeef")

        assert run(body) is None

    def test_put_get_round_trip(self):
        spec = SimSpec.from_dict(DOC_ONE)
        key = spec.run_hash("gcc", "Ideal")
        stats = _local_reference_stats()

        async def body(server, client):
            put = await client.store_put(key, store_entry_payload(key, stats))
            assert put == {"stored": key}
            return await client.store_get(key)

        payload = run(body)
        fetched = parse_store_entry(payload, key)
        assert fetched is not None
        assert fetched.to_dict() == stats.to_dict()
        # Wire payloads must preserve insertion order (order-sensitive
        # float sums); a sorted re-serialization indicates the server
        # re-keyed the stats dict.
        assert list(payload["stats"]) == list(stats.to_dict())

    def test_put_garbage_400(self):
        async def body(server, client):
            try:
                await client.store_put("somekey", {"format": 99})
            except ServeError as exc:
                return exc.status
            return None

        assert run(body) == 400

    def test_remote_store_read_through_and_write_through(self, tmp_path):
        spec = SimSpec.from_dict(DOC_ONE)
        key = spec.run_hash("gcc", "Ideal")
        stats = _local_reference_stats()

        async def body(server, client):
            await client.store_put(key, store_entry_payload(key, stats))
            local = FilesystemRunStore(tmp_path)
            remote = RemoteRunStore(
                f"http://127.0.0.1:{server.port}", local=local
            )
            # Sync HTTP client: keep it off the server's event loop.
            loaded = await asyncio.to_thread(remote.load, key)
            assert loaded is not None
            assert loaded.to_dict() == stats.to_dict()
            # Read-through populated the local tier.
            assert local.load(key) is not None
            # store() pushes to the shared tier too.
            key2 = spec.run_hash("gcc", "Ideal") + "f"
            await asyncio.to_thread(remote.store, key2, stats)
            return await client.store_get(key2)

        pushed = run(body)
        assert pushed is not None
        assert parse_store_entry(pushed, "x") is None  # key mismatch guard
        fetched = parse_store_entry(
            pushed, SimSpec.from_dict(DOC_ONE).run_hash("gcc", "Ideal") + "f"
        )
        assert fetched is not None and fetched.to_dict() == stats.to_dict()


class TestDeterministicCacheBytes:
    def test_independent_executions_write_identical_entry_files(
        self, tmp_path
    ):
        spec = SimSpec.from_dict(DOC)
        entries = {}
        for name in ("worker-a", "worker-b"):
            clear_sweep_cache()  # each "worker" starts cold
            plan = build_plan([spec])
            execute_plan(plan, jobs=1, cache=SweepCache(tmp_path / name))
            runs_dir = tmp_path / name / "runs"
            entries[name] = {
                path.name: path.read_bytes()
                for path in sorted(runs_dir.glob("*.json"))
            }
        assert entries["worker-a"].keys() == entries["worker-b"].keys()
        assert len(entries["worker-a"]) == 2
        # Byte-identical, so concurrent last-write-wins is a no-op.
        assert entries["worker-a"] == entries["worker-b"]


def _local_reference_stats():
    """One RunStats for DOC_ONE's single unit, computed locally."""
    spec = SimSpec.from_dict(DOC_ONE)
    service = ExecutionService(jobs=1, cache=False)
    try:
        outcome = service.submit([spec])
        return outcome.results[spec.run_hash("gcc", "Ideal")]
    finally:
        service.close()
