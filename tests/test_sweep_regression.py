"""Bit-for-bit sweep regression pin.

The digest below was computed on the pre-registry/pre-SimSpec tree
(PR 2, commit 2f72329) over a small but fully representative grid: every
built-in scheme, two workloads, 1200 requests, seed 42, default config.
Any change to trace generation, policy behaviour, the engine, or
statistics accounting will change it; refactors must not.

If this test fails, either a refactor broke determinism (fix the code)
or simulation semantics were changed deliberately (recompute the digest
and say so in the changelog).
"""

import hashlib
import json

from repro.experiments.cache import SweepCache
from repro.experiments.planner import build_plan, execute_plan
from repro.experiments.runner import clear_sweep_cache, run_sweep
from repro.experiments.spec import SimSpec

PINNED_DIGEST = "6136eb16136e76fa2d0ed0bbf855326ad42e71739646219d245320436fa191b4"

PINNED_SPEC = SimSpec(
    schemes=(
        "Ideal", "Scrubbing", "Scrubbing-W0", "M-metric", "Hybrid", "TLC",
        "LWT-2", "LWT-4", "LWT-4-noconv", "Select-4:1", "Select-4:2",
    ),
    workloads=("gcc", "mcf"),
    target_requests=1_200,
    seed=42,
)


def _digest(grid) -> str:
    payload = {
        workload: {scheme: stats.to_dict() for scheme, stats in per.items()}
        for workload, per in grid.items()
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def test_sweep_output_matches_pre_refactor_pin():
    # run_sweep resolves through the execution planner, so this pins the
    # whole planner path (plan -> serial execute -> fan-out) to the
    # pre-planner serial digest.
    try:
        grid = run_sweep(PINNED_SPEC, jobs=1, cache=False)
        assert _digest(grid) == PINNED_DIGEST
    finally:
        clear_sweep_cache()


def test_planner_granular_cache_round_trip_matches_pin(tmp_path):
    # Cold planned run stores per-run entries; a fresh process-equivalent
    # (cleared memo) warm run must rebuild the identical grid purely from
    # the granular cache.
    try:
        cold = run_sweep(PINNED_SPEC, jobs=1, cache=SweepCache(tmp_path))
        assert _digest(cold) == PINNED_DIGEST
        clear_sweep_cache()
        plan = build_plan([PINNED_SPEC])
        results = execute_plan(plan, jobs=1, cache=SweepCache(tmp_path))
        assert plan.stats.units_simulated == 0
        assert plan.stats.units_disk == len(plan.units)
        assert _digest(plan.grid_for(PINNED_SPEC, results)) == PINNED_DIGEST
    finally:
        clear_sweep_cache()


def test_whole_sweep_entry_migrates_to_pinned_digest(tmp_path):
    # A legacy whole-sweep cache entry (no granular files) must satisfy
    # the planner via read-through migration, bit-for-bit.
    try:
        cache = SweepCache(tmp_path)
        grid = run_sweep(PINNED_SPEC, jobs=1, cache=False)
        cache.store(PINNED_SPEC, grid)
        clear_sweep_cache()
        plan = build_plan([PINNED_SPEC])
        results = execute_plan(plan, jobs=1, cache=SweepCache(tmp_path))
        assert plan.stats.units_simulated == 0
        assert plan.stats.units_migrated == len(plan.units)
        assert _digest(plan.grid_for(PINNED_SPEC, results)) == PINNED_DIGEST
    finally:
        clear_sweep_cache()
