"""Unit tests for the (72, 64) SECDED code used by the TLC baseline."""

import numpy as np
import pytest

from repro.ecc.secded import Secded7264, SecdedStatus


@pytest.fixture(scope="module")
def code():
    return Secded7264()


class TestEncode:
    def test_codeword_length(self, code, rng):
        data = rng.integers(0, 2, 64).astype(np.uint8)
        assert code.encode(data).shape == (72,)

    def test_rejects_wrong_length(self, code):
        with pytest.raises(ValueError):
            code.encode(np.zeros(60, dtype=np.uint8))

    def test_clean_decode(self, code, rng):
        data = rng.integers(0, 2, 64).astype(np.uint8)
        result = code.decode(code.encode(data))
        assert result.status is SecdedStatus.CLEAN
        assert (result.data_bits == data).all()


class TestSingleErrors:
    @pytest.mark.parametrize("position", [0, 1, 2, 3, 5, 17, 64, 71])
    def test_corrects_any_single_flip(self, code, rng, position):
        data = rng.integers(0, 2, 64).astype(np.uint8)
        cw = code.encode(data)
        cw[position] ^= 1
        result = code.decode(cw)
        assert result.status is SecdedStatus.CORRECTED
        assert (result.data_bits == data).all()

    def test_exhaustive_single_error(self, code, rng):
        data = rng.integers(0, 2, 64).astype(np.uint8)
        cw = code.encode(data)
        for position in range(72):
            bad = cw.copy()
            bad[position] ^= 1
            result = code.decode(bad)
            assert result.ok and (result.data_bits == data).all(), position


class TestDoubleErrors:
    def test_detects_sampled_doubles(self, code, rng):
        data = rng.integers(0, 2, 64).astype(np.uint8)
        cw = code.encode(data)
        for _ in range(200):
            pos = rng.choice(72, 2, replace=False)
            bad = cw.copy()
            bad[pos] ^= 1
            assert code.decode(bad).status is SecdedStatus.DETECTED_DOUBLE

    def test_rejects_wrong_length(self, code):
        with pytest.raises(ValueError):
            code.decode(np.zeros(71, dtype=np.uint8))
