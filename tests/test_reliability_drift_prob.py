"""Unit + property tests for per-cell drift-error probabilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pcm.params import M_METRIC, R_METRIC
from repro.reliability.drift_prob import (
    incremental_error_probability,
    level_error_probability,
    mean_cell_error_probability,
)


class TestLevelErrorProbability:
    def test_zero_at_t0(self):
        for level in range(4):
            assert level_error_probability(R_METRIC, level, 1.0) == 0.0

    def test_top_level_never_errors(self):
        assert level_error_probability(R_METRIC, 3, 1e9) == 0.0

    def test_monotone_in_time(self):
        times = np.asarray([2.0, 8.0, 64.0, 640.0, 1e5])
        probs = level_error_probability(R_METRIC, 2, times)
        assert np.all(np.diff(probs) >= 0)

    def test_middle_states_worst(self):
        at = 640.0
        p1 = level_error_probability(R_METRIC, 1, at)
        p2 = level_error_probability(R_METRIC, 2, at)
        p0 = level_error_probability(R_METRIC, 0, at)
        assert p2 > p0
        assert p1 > p0

    def test_truncation_reduces_probability(self):
        at = 8.0
        truncated = level_error_probability(R_METRIC, 2, at, truncated=True)
        full = level_error_probability(R_METRIC, 2, at, truncated=False)
        assert truncated < full

    def test_rejects_bad_level(self):
        with pytest.raises(ValueError):
            level_error_probability(R_METRIC, 5, 8.0)

    def test_scalar_in_scalar_out(self):
        value = level_error_probability(R_METRIC, 1, 8.0)
        assert isinstance(value, float)

    @given(t=st.floats(min_value=1.0, max_value=1e8))
    @settings(max_examples=40, deadline=None)
    def test_valid_probability_property(self, t):
        p = level_error_probability(R_METRIC, 2, t)
        assert 0.0 <= p <= 1.0


class TestMeanCellProbability:
    def test_uniform_average_of_levels(self):
        at = 64.0
        mean = mean_cell_error_probability(R_METRIC, at)
        per_level = [level_error_probability(R_METRIC, lv, at) for lv in range(4)]
        assert mean == pytest.approx(sum(per_level) / 4)

    def test_custom_weights(self):
        at = 64.0
        only2 = mean_cell_error_probability(R_METRIC, at, [0, 0, 1.0, 0])
        assert only2 == pytest.approx(level_error_probability(R_METRIC, 2, at))

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            mean_cell_error_probability(R_METRIC, 8.0, [0.5, 0.5, 0.5, 0.5])

    def test_m_metric_far_more_reliable(self):
        at = 640.0
        assert mean_cell_error_probability(
            M_METRIC, at
        ) < 0.01 * mean_cell_error_probability(R_METRIC, at)

    def test_paper_magnitude_at_8s(self):
        # Calibration anchor: Table III (S=8, E=0) = 7.09e-2 implies a
        # per-cell probability near 2.9e-4.
        p = mean_cell_error_probability(R_METRIC, 8.0)
        assert 2.0e-4 < p < 4.0e-4


class TestIncremental:
    def test_difference_of_monotone(self):
        inc = incremental_error_probability(R_METRIC, 8.0, 16.0)
        p8 = mean_cell_error_probability(R_METRIC, 8.0)
        p16 = mean_cell_error_probability(R_METRIC, 16.0)
        assert inc == pytest.approx(p16 - p8)

    def test_zero_when_same_time(self):
        assert incremental_error_probability(R_METRIC, 8.0, 8.0) == 0.0

    def test_rejects_reversed_times(self):
        with pytest.raises(ValueError):
            incremental_error_probability(R_METRIC, 16.0, 8.0)
