"""End-to-end integration tests: paper-shape assertions across the stack.

These tests run real traces through real policies on the real engine and
assert the *relationships* the paper reports — who wins, in which metric,
and roughly by how much. They are the reproduction's acceptance tests.
"""

import pytest

from repro import quick_compare
from repro.ecc.bch import bch8_for_line
from repro.memsim.config import MemoryConfig
from repro.pcm.data import bytes_to_levels, levels_to_bytes
import numpy as np


@pytest.fixture(scope="module")
def mcf_results():
    return quick_compare("mcf", target_requests=8_000)


@pytest.fixture(scope="module")
def sphinx_results():
    return quick_compare(
        "sphinx3",
        schemes=("Ideal", "M-metric", "Hybrid", "LWT-4", "LWT-4-noconv"),
        target_requests=8_000,
    )


class TestPaperShapeOnMcf:
    def test_scrubbing_and_m_degrade_performance(self, mcf_results):
        ideal = mcf_results["Ideal"].execution_time_ns
        assert mcf_results["Scrubbing"].execution_time_ns > 1.1 * ideal
        assert mcf_results["M-metric"].execution_time_ns > 1.3 * ideal

    def test_hybrid_close_to_ideal(self, mcf_results):
        ideal = mcf_results["Ideal"].execution_time_ns
        assert mcf_results["Hybrid"].execution_time_ns < 1.12 * ideal

    def test_readduo_beats_both_baselines(self, mcf_results):
        for scheme in ("Hybrid", "LWT-4", "Select-4:2"):
            assert (
                mcf_results[scheme].execution_time_ns
                < mcf_results["Scrubbing"].execution_time_ns
            )
            assert (
                mcf_results[scheme].execution_time_ns
                < mcf_results["M-metric"].execution_time_ns
            )

    def test_select_saves_energy_and_lifetime(self, mcf_results):
        ideal = mcf_results["Ideal"]
        select = mcf_results["Select-4:2"]
        assert select.dynamic_energy_pj < ideal.dynamic_energy_pj
        assert select.total_cell_writes < ideal.total_cell_writes

    def test_read_modes_match_design(self, mcf_results):
        assert mcf_results["Ideal"].mode_fraction("R") == 1.0
        assert mcf_results["M-metric"].mode_fraction("M") == 1.0
        assert mcf_results["Hybrid"].mode_fraction("R") > 0.99
        assert mcf_results["LWT-4"].mode_fraction("RM") < 0.2

    def test_no_silent_corruption_in_short_runs(self, mcf_results):
        # P(>17 errors) within a 640 s window is ~1e-12 per read; any
        # occurrence in an 8k-request run means the model is broken.
        for stats in mcf_results.values():
            assert stats.silent_corruptions == 0

    def test_scrub_volume_ordering(self, mcf_results):
        # S=8 s scrubbing visits ~80x more lines than S=640 s schemes.
        assert (
            mcf_results["Scrubbing"].scrub_ops
            > 20 * mcf_results["Hybrid"].scrub_ops
        )


class TestPaperShapeOnSphinx:
    def test_conversion_pays_off(self, sphinx_results):
        conv = sphinx_results["LWT-4"].execution_time_ns
        noconv = sphinx_results["LWT-4-noconv"].execution_time_ns
        assert conv < noconv

    def test_lwt_with_conversion_beats_m_metric(self, sphinx_results):
        assert (
            sphinx_results["LWT-4"].execution_time_ns
            < sphinx_results["M-metric"].execution_time_ns
        )

    def test_noconv_pays_rm_reads(self, sphinx_results):
        assert sphinx_results["LWT-4-noconv"].mode_fraction("RM") > 0.5

    def test_conversions_counted(self, sphinx_results):
        assert sphinx_results["LWT-4"].conversions > 0
        assert sphinx_results["LWT-4-noconv"].conversions == 0


class TestReadoutPathWithRealEcc:
    """The full ReadDuo read path on real cells with the real BCH code."""

    def test_drifted_line_recovered_via_hybrid_path(self, rng):
        from repro.pcm.array import CellArray
        from repro.pcm.data import symbol_bit_errors

        code = bch8_for_line()
        payload = rng.integers(0, 2, 512).astype(np.uint8)
        codeword = code.encode(payload)
        # Store the 592-bit codeword in 296 MLC cells.
        cells = 296
        bits = np.zeros(2 * cells, dtype=np.uint8)
        bits[: code.n] = codeword
        packed = bits.reshape(-1, 2)
        symbols = (packed[:, 0] << 1) | packed[:, 1]
        from repro.pcm.data import symbols_to_levels, levels_to_symbols

        levels = symbols_to_levels(symbols)
        array = CellArray(
            1, cells, rng=rng, initial_levels=levels[None, :], start_time_s=0.0
        )
        # Sense with R-metric after heavy aging, decode, compare.
        sensed = array.read_line(0, 1.0e5, "R").sensed_levels
        sensed_symbols = levels_to_symbols(sensed)
        sensed_bits = np.zeros(2 * cells, dtype=np.uint8)
        sensed_bits[0::2] = (sensed_symbols >> 1) & 1
        sensed_bits[1::2] = sensed_symbols & 1
        received = sensed_bits[: code.n]
        result = code.decode(received)
        if result.ok:
            assert (result.data_bits == payload).all()
        else:
            # Too many drift errors for correction: the hybrid path would
            # retry with M-sensing, which must come back clean enough.
            sensed_m = array.read_line(0, 1.0e5, "M").sensed_levels
            m_symbols = levels_to_symbols(sensed_m)
            m_bits = np.zeros(2 * cells, dtype=np.uint8)
            m_bits[0::2] = (m_symbols >> 1) & 1
            m_bits[1::2] = m_symbols & 1
            m_result = code.decode(m_bits[: code.n])
            assert m_result.ok
            assert (m_result.data_bits == payload).all()


class TestDataPathRoundtrip:
    def test_bytes_survive_fresh_storage(self, rng):
        from repro.pcm.array import CellArray

        data = bytes(rng.integers(0, 256, 64, dtype=np.uint8))
        levels = bytes_to_levels(data)
        array = CellArray(
            1, 256, rng=rng, initial_levels=levels[None, :], start_time_s=0.0
        )
        sensed = array.read_line(0, 1.0, "R").sensed_levels
        assert levels_to_bytes(sensed) == data


class TestCrossSchemeInvariants:
    def test_same_trace_same_demand_traffic(self, mcf_results):
        reads = {s.reads for s in mcf_results.values()}
        writes = {s.writes for s in mcf_results.values()}
        assert len(reads) == 1
        assert len(writes) == 1

    def test_energy_consistency(self, mcf_results):
        for stats in mcf_results.values():
            assert stats.dynamic_energy_pj == pytest.approx(
                sum(stats.energy.by_category.values())
            )

    def test_instruction_counts_identical(self, mcf_results):
        counts = {s.instructions for s in mcf_results.values()}
        assert len(counts) == 1


class TestConfigurationVariants:
    def test_more_banks_never_slower(self, small_profile):
        from repro import generate_trace, make_policy, simulate, PolicyContext

        trace = generate_trace(small_profile, 100_000, seed=4)
        times = {}
        for banks in (2, 8):
            config = MemoryConfig(total_lines=1 << 16, num_banks=banks)
            policy = make_policy(
                "Ideal", PolicyContext(profile=small_profile, config=config)
            )
            times[banks] = simulate(trace, policy, config).execution_time_ns
        assert times[8] <= times[2]

    def test_bigger_memory_scrubs_more(self, small_profile):
        from repro import generate_trace, make_policy, simulate, PolicyContext

        trace = generate_trace(small_profile, 200_000, seed=4)
        ops = {}
        for lines in (1 << 20, 1 << 24):
            config = MemoryConfig(total_lines=lines, num_banks=8)
            policy = make_policy(
                "Scrubbing", PolicyContext(profile=small_profile, config=config)
            )
            ops[lines] = simulate(trace, policy, config).scrub_ops
        assert ops[1 << 24] > ops[1 << 20]
