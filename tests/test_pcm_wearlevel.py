"""Unit + property tests for Start-Gap wear leveling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pcm.wearlevel import StartGapMapper


class TestMapping:
    def test_initial_identity(self):
        mapper = StartGapMapper(8)
        assert mapper.mapping() == list(range(8))

    def test_mapping_is_always_injective(self):
        mapper = StartGapMapper(16, gap_move_interval=1)
        for step in range(200):
            mapper.on_write(step % 16)
            mapping = mapper.mapping()
            assert len(set(mapping)) == 16, f"collision after step {step}"

    def test_gap_slot_never_mapped(self):
        mapper = StartGapMapper(16, gap_move_interval=1)
        for step in range(100):
            mapper.on_write(step % 16)
            assert mapper.gap not in mapper.mapping()

    def test_out_of_range_rejected(self):
        mapper = StartGapMapper(8)
        with pytest.raises(ValueError):
            mapper.physical_of(8)

    def test_full_rotation_advances_start(self):
        mapper = StartGapMapper(4, gap_move_interval=1)
        # gap walks 4 -> 3 -> 2 -> 1 -> 0 (4 moves), then wraps.
        for _ in range(5):
            mapper.on_write(0)
        assert mapper.start == 1

    @given(
        num_lines=st.integers(2, 32),
        writes=st.integers(0, 300),
    )
    @settings(max_examples=40, deadline=None)
    def test_bijectivity_property(self, num_lines, writes):
        mapper = StartGapMapper(num_lines, gap_move_interval=3)
        for step in range(writes):
            mapper.on_write(step % num_lines)
        mapping = mapper.mapping()
        assert len(set(mapping)) == num_lines
        assert all(0 <= p <= num_lines for p in mapping)


class TestWearSpreading:
    def test_hot_line_spreads_across_slots(self):
        # Hammer one logical line; the mapping rotation must spread the
        # physical wear.
        mapper = StartGapMapper(16, gap_move_interval=4)
        for _ in range(16 * 17 * 4 * 3):  # several full rotations
            mapper.on_write(5)
        touched = int(np.count_nonzero(mapper.physical_writes))
        assert touched == 17  # every slot absorbed part of the hammering

    def test_spread_improves_with_rotation(self):
        fast = StartGapMapper(16, gap_move_interval=2)
        slow = StartGapMapper(16, gap_move_interval=5000)
        for _ in range(3000):
            fast.on_write(5)
            slow.on_write(5)
        assert fast.wear_spread() < slow.wear_spread()

    def test_write_overhead_is_one_over_interval(self):
        mapper = StartGapMapper(64, gap_move_interval=100)
        for step in range(20_000):
            mapper.on_write(step % 64)
        assert mapper.write_overhead() == pytest.approx(0.01, rel=0.1)


class TestValidation:
    def test_rejects_tiny_memory(self):
        with pytest.raises(ValueError):
            StartGapMapper(1)

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            StartGapMapper(8, gap_move_interval=0)
