"""Unit tests for the I-V characteristic model (Figure 2)."""

import numpy as np
import pytest

from repro.pcm.iv import DEFAULT_IV_MODEL, IVModel


class TestIVModel:
    def test_resistance_increases_with_level(self):
        r = [DEFAULT_IV_MODEL.r_metric(level) for level in range(4)]
        assert r == sorted(r)
        assert r[0] > 0

    def test_m_metric_increases_with_level(self):
        m = [DEFAULT_IV_MODEL.m_metric(level) for level in range(4)]
        assert m == sorted(m)

    def test_current_superlinear_near_threshold(self):
        low = float(DEFAULT_IV_MODEL.current(0.1, 2))
        high = float(DEFAULT_IV_MODEL.current(1.0, 2))
        assert high / low > 10.0  # Poole-Frenkel, not ohmic

    def test_iv_curve_stays_below_threshold(self):
        v, i = DEFAULT_IV_MODEL.iv_curve(1, num_points=50)
        assert v.max() < DEFAULT_IV_MODEL.v_th
        assert len(v) == len(i) == 50
        assert np.all(np.diff(i) >= 0)

    def test_m_separation_beats_r_at_default(self):
        # The paper's Figure 2(b): voltage sensing keeps levels apart
        # better than current sensing collapses them at high resistance.
        assert DEFAULT_IV_MODEL.signal_separation("M") > 1.5
        assert DEFAULT_IV_MODEL.signal_separation("R") > 1.0

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_IV_MODEL.signal_separation("Q")

    def test_rejects_nonincreasing_thickness(self):
        with pytest.raises(ValueError):
            IVModel(ua_per_level=(2.0, 10.0, 10.0, 80.0))

    def test_rejects_bias_above_threshold(self):
        with pytest.raises(ValueError):
            IVModel(v_bias=2.0)
