"""Unit tests for the DRAM FIT -> LER target conversion."""

import pytest

from repro.reliability.targets import DRAM_TARGET, ReliabilityTarget


class TestDramTarget:
    def test_paper_per_hour_value(self):
        # 25 FIT/Mbit at 512 bits/line -> 1.28e-11 per line-hour.
        assert DRAM_TARGET.ler_per_line_hour == pytest.approx(1.28e-11)

    def test_paper_per_second_value(self):
        assert DRAM_TARGET.ler_per_line_second == pytest.approx(3.556e-15, rel=1e-3)

    def test_budget_scales_with_interval(self):
        assert DRAM_TARGET.budget_for_interval(4.0) == pytest.approx(
            1.422e-14, rel=1e-3
        )
        assert DRAM_TARGET.budget_for_interval(640.0) == pytest.approx(
            2.276e-12, rel=1e-3
        )

    def test_meets(self):
        assert DRAM_TARGET.meets(1e-15, 8.0)
        assert not DRAM_TARGET.meets(1e-10, 8.0)

    def test_budget_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            DRAM_TARGET.budget_for_interval(0.0)

    def test_custom_target(self):
        loose = ReliabilityTarget(fit_per_mbit=25_000.0)
        assert loose.ler_per_line_hour == pytest.approx(1.28e-8)

    def test_rejects_nonpositive_fit(self):
        with pytest.raises(ValueError):
            ReliabilityTarget(fit_per_mbit=0.0)
