"""Unit tests for line-error-rate tables (Tables III/IV design points)."""

import numpy as np
import pytest

from repro.pcm.params import M_METRIC, R_METRIC
from repro.reliability.ler import (
    expected_line_errors,
    ler_table,
    line_failure_probability,
    max_safe_interval,
)
from repro.reliability.targets import DRAM_TARGET


class TestLineFailureProbability:
    def test_paper_table3_unprotected_at_8s(self):
        # Paper: 7.09e-2; our truncated model gives ~7.2e-2.
        p = line_failure_probability(R_METRIC, 0, 8.0)
        assert p == pytest.approx(7.1e-2, rel=0.1)

    def test_paper_table3_bch1_at_8s(self):
        # Paper: 2.56e-3.
        p = line_failure_probability(R_METRIC, 1, 8.0)
        assert p == pytest.approx(2.6e-3, rel=0.15)

    def test_bch8_safe_at_8s(self):
        p = line_failure_probability(R_METRIC, 8, 8.0)
        assert p < DRAM_TARGET.budget_for_interval(8.0)

    def test_bch8_unsafe_at_16s(self):
        p = line_failure_probability(R_METRIC, 8, 16.0)
        assert p > DRAM_TARGET.budget_for_interval(16.0)

    def test_m_metric_bch8_safe_at_640s(self):
        p = line_failure_probability(M_METRIC, 8, 640.0)
        assert p < DRAM_TARGET.budget_for_interval(640.0)

    def test_monotone_in_ecc_strength(self):
        probs = [line_failure_probability(R_METRIC, e, 64.0) for e in range(6)]
        assert probs == sorted(probs, reverse=True)

    def test_vectorized_ages(self):
        probs = line_failure_probability(R_METRIC, 0, np.asarray([8.0, 64.0]))
        assert probs.shape == (2,)
        assert probs[1] > probs[0]

    def test_rejects_negative_strength(self):
        with pytest.raises(ValueError):
            line_failure_probability(R_METRIC, -1, 8.0)


class TestExpectedErrors:
    def test_matches_mean_times_cells(self):
        expected = expected_line_errors(R_METRIC, 640.0)
        assert 1.0 < expected < 4.0  # ~2 drifted cells per line at 640 s

    def test_scales_with_cells(self):
        half = expected_line_errors(R_METRIC, 640.0, cells=128)
        full = expected_line_errors(R_METRIC, 640.0, cells=256)
        assert full == pytest.approx(2 * half)


class TestLerTable:
    def test_shape_and_targets(self):
        table = ler_table(R_METRIC, [4, 8, 16], [0, 1, 8])
        assert table.ler.shape == (3, 3)
        assert table.targets[1] == pytest.approx(
            DRAM_TARGET.budget_for_interval(8.0)
        )

    def test_meets_target_mask(self):
        table = ler_table(R_METRIC, [8, 640], [0, 8])
        mask = table.meets_target()
        assert bool(mask[0, 1])  # (S=8, E=8) safe
        assert not bool(mask[0, 0])  # unprotected unsafe
        assert not bool(mask[1, 1])  # (S=640, E=8) unsafe under R

    def test_cell_lookup(self):
        table = ler_table(R_METRIC, [8], [0])
        assert table.cell(8, 0) == pytest.approx(
            float(line_failure_probability(R_METRIC, 0, 8.0))
        )

    def test_rows_dictionaries(self):
        table = ler_table(R_METRIC, [8], [0, 8])
        rows = table.rows()
        assert rows[0]["S"] == 8
        assert "E=8" in rows[0]

    def test_rejects_empty_sweep(self):
        with pytest.raises(ValueError):
            ler_table(R_METRIC, [], [0])


class TestMaxSafeInterval:
    def test_r_metric_design_point_is_8s(self):
        # The paper's central observation: BCH-8 + R-sensing -> S = 8 s.
        safe = max_safe_interval(R_METRIC, 8, [2**i for i in range(2, 14)])
        assert safe == 8

    def test_m_metric_relaxes_beyond_640(self):
        safe = max_safe_interval(M_METRIC, 8, [640, 16384, 65536])
        assert safe >= 16384

    def test_none_when_nothing_safe(self):
        assert max_safe_interval(R_METRIC, 0, [8, 16]) is None
