"""Seed-robustness: the paper-shape conclusions hold across seeds."""

import pytest

from repro import quick_compare


@pytest.mark.parametrize("seed", [7, 1234, 99991])
class TestOrderingsAcrossSeeds:
    def test_mcf_orderings(self, seed):
        results = quick_compare("mcf", target_requests=5_000, seed=seed)
        ideal = results["Ideal"].execution_time_ns

        def norm(name):
            return results[name].execution_time_ns / ideal

        # The qualitative Figure 9 story must not depend on the seed.
        assert norm("M-metric") > norm("Hybrid")
        assert norm("Scrubbing") > norm("Hybrid")
        assert norm("Hybrid") < 1.15
        assert norm("Select-4:2") < norm("Scrubbing")

    def test_select_energy_and_lifetime(self, seed):
        results = quick_compare(
            "lbm",
            schemes=("Ideal", "Select-4:2"),
            target_requests=5_000,
            seed=seed,
        )
        ideal = results["Ideal"]
        select = results["Select-4:2"]
        assert select.dynamic_energy_pj < ideal.dynamic_energy_pj
        assert select.total_cell_writes < ideal.total_cell_writes

    def test_sphinx_conversion_direction(self, seed):
        results = quick_compare(
            "sphinx3",
            schemes=("Ideal", "LWT-4", "LWT-4-noconv"),
            target_requests=5_000,
            seed=seed,
        )
        assert (
            results["LWT-4"].execution_time_ns
            <= results["LWT-4-noconv"].execution_time_ns
        )
